//! The Chapter 7 measurement harness.
//!
//! [`Evaluation::run`] executes the whole population on every machine
//! configuration under both branch-predictor scripts (BP-1/BP-2), exactly
//! as the dissertation's simulation runs did, and exposes accessors that
//! regenerate each results table: raw IPC and Figure-of-Merit summaries
//! under the Table 16 filters, coverage, node-span ratios, parallelism,
//! correlations, and the per-benchmark hot-method breakdowns of
//! Tables 27/28.

use std::collections::HashMap;

use javaflow_analysis::{pearson, Summary};
use javaflow_bytecode::{verify, Cfg};
use javaflow_fabric::{
    place, prepare, resolve, ArenaPool, BranchMode, CostProfile, ExecParams, ExecReport,
    FabricConfig, LoadedMethod, MetricsRegistry, NetKind, Outcome, ResolveStats, SimArena,
};
use javaflow_workloads::SuiteKind;

use crate::parallel::{default_threads, sweep_ordered, SweepStats};
use crate::{population, Filter, MethodRecord};

/// Evaluation parameters.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Synthetic-population size added to the suite methods.
    pub synthetic_count: usize,
    /// Per-run mesh-cycle budget (the dissertation's timeout filter).
    pub max_mesh_cycles: u64,
    /// Machine configurations to evaluate (defaults to the Table 15 six).
    pub configs: Vec<FabricConfig>,
    /// Worker threads for the sweep (defaults to the `JAVAFLOW_THREADS`
    /// override or the machine's available parallelism). Results are
    /// bit-identical at any thread count.
    pub threads: usize,
    /// Interconnect model applied to **every** configuration in `configs`
    /// (`tables --net contended`). The default [`NetKind::Ideal`]
    /// reproduces the dissertation's closed-form delays bit for bit;
    /// [`NetKind::Contended`] routes operands through X-Y routers and
    /// memory/GPP requests through slotted rings, attaching link-level
    /// statistics to every sample.
    pub net: NetKind,
    /// Token-walk fast-forwarding (`ExecParams::fast_forward`). On by
    /// default; the kernel only honours it where it is provably
    /// report-invariant (order-free net models, stub GPP), so turning it
    /// off trades speed for a naive walk of the identical event stream.
    pub fast_forward: bool,
    /// Block-compiled execution (`ExecParams::compiled`). Off by default:
    /// a one-shot sweep runs every (method, config, script) key exactly
    /// once, so recording a schedule that is never replayed is pure
    /// overhead. Resident processes (`core::service`, the server) that
    /// re-run sweeps against cached [`javaflow_fabric::PreparedMethod`]s
    /// opt in and amortize the one recording run across every replay.
    pub compiled: bool,
}

impl Default for EvalConfig {
    fn default() -> EvalConfig {
        EvalConfig {
            synthetic_count: 240,
            max_mesh_cycles: 250_000,
            configs: FabricConfig::all_six(),
            threads: default_threads(),
            net: NetKind::Ideal,
            fast_forward: true,
            compiled: false,
        }
    }
}

/// Static, per-method measurements (configuration-independent parts plus
/// per-configuration placement).
#[derive(Debug, Clone, PartialEq)]
pub struct MethodStatics {
    /// Static instruction count.
    pub static_len: usize,
    /// Register count.
    pub max_locals: u16,
    /// Operand-stack depth.
    pub max_stack: u16,
    /// Resolution statistics (Tables 7, 10–12).
    pub resolve: ResolveStats,
    /// Forward jumps `(count, avg length, max length)` (Table 13).
    pub fwd_jumps: (usize, f64, u32),
    /// Backward jumps `(count, avg length, max length)` (Table 14).
    pub back_jumps: (usize, f64, u32),
    /// Nodes-spanned / instructions per configuration (Tables 19/20).
    pub span_ratio: Vec<f64>,
    /// Whether the method loads on each configuration.
    pub loadable: Vec<bool>,
}

/// One scripted execution sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Index into [`Evaluation::records`].
    pub record: usize,
    /// Index into [`Evaluation::configs`].
    pub config: usize,
    /// Branch script used.
    pub bp: BranchMode,
    /// The execution report.
    pub report: ExecReport,
    /// Whether the run returned (timeouts/deadlocks are filtered from the
    /// aggregate statistics, as in the dissertation).
    pub ok: bool,
}

/// The complete evaluation data set.
#[derive(Debug)]
pub struct Evaluation {
    /// The population.
    pub records: Vec<MethodRecord>,
    /// The machine configurations, index-aligned with sample/config ids.
    pub configs: Vec<FabricConfig>,
    /// Per-record static measurements.
    pub statics: Vec<MethodStatics>,
    /// All execution samples.
    pub samples: Vec<Sample>,
    /// Scheduling telemetry from the sweep: workers actually used plus
    /// per-worker records/busy-time/batch/steal counts. Unlike every
    /// other field, this is **not** deterministic — it describes how the
    /// work-stealing scheduler happened to distribute the records.
    pub sweep: SweepStats,
    /// `(record, config, bp)` → index into `samples`, built once after
    /// the sweep so [`Evaluation::sample`] is O(1).
    sample_index: HashMap<(usize, usize, BranchMode), usize>,
}

/// A per-configuration row of the IPC / Figure-of-Merit tables.
#[derive(Debug, Clone)]
pub struct ConfigRow {
    /// Configuration name.
    pub name: &'static str,
    /// Raw IPC summary over samples (Table 21/24/25 left half).
    pub ipc: Summary,
    /// Figure of Merit relative to the baseline (right half); the baseline
    /// row is identically 1.
    pub fom: Summary,
}

impl Evaluation {
    /// Assembles an evaluation from per-record sweep results (statics plus
    /// that record's samples, in record order), building the O(1) sample
    /// index. [`Evaluation::run`] and the resident-process service path
    /// (`core::service`) both finish through here, so the in-memory shape
    /// cannot depend on which path produced it.
    #[must_use]
    pub fn assemble(
        records: Vec<MethodRecord>,
        configs: Vec<FabricConfig>,
        results: Vec<(MethodStatics, Vec<Sample>)>,
        sweep: SweepStats,
    ) -> Evaluation {
        let mut statics = Vec::with_capacity(records.len());
        let mut samples = Vec::new();
        for (st, mut record_samples) in results {
            statics.push(st);
            samples.append(&mut record_samples);
        }
        let sample_index =
            samples.iter().enumerate().map(|(i, s)| ((s.record, s.config, s.bp), i)).collect();
        Evaluation { records, configs, statics, samples, sweep, sample_index }
    }

    /// Runs the full evaluation.
    ///
    /// Records are swept on [`EvalConfig::threads`] work-stealing workers
    /// in **descending predicted cost** (tail-first: static length scaled
    /// by a persisted `events_per_run` profile when
    /// `JAVAFLOW_COST_PROFILE` names one), each worker drawing a warm
    /// [`SimArena`] from the process-wide [`ArenaPool`]. The results are
    /// spliced back in record order, so the output is bit-identical to a
    /// serial run at any thread count and under any schedule.
    #[must_use]
    pub fn run(cfg: &EvalConfig) -> Evaluation {
        let records = population(cfg.synthetic_count);
        let configs: Vec<FabricConfig> =
            cfg.configs.iter().map(|c| c.clone().with_net(cfg.net)).collect();

        let profile_path = std::env::var_os("JAVAFLOW_COST_PROFILE").map(std::path::PathBuf::from);
        let profile = profile_path.as_deref().and_then(CostProfile::load);
        let schedule = cost_schedule(&records, profile.as_ref());

        let pool = ArenaPool::global();
        let swept = sweep_ordered(
            &records,
            cfg.threads,
            &schedule,
            || pool.checkout(),
            |arena| pool.checkin(arena),
            |arena, ri, rec| {
                eval_record(
                    ri,
                    rec,
                    &configs,
                    cfg.max_mesh_cycles,
                    cfg.fast_forward,
                    cfg.compiled,
                    arena,
                )
            },
        );

        let eval = Evaluation::assemble(records, configs, swept.results, swept.stats);
        if let Some(path) = profile_path {
            // Fold this sweep's observed costs into the persisted profile
            // so the next sweep (or the next process) schedules from
            // measured history. Best-effort: a read-only path must not
            // fail the evaluation.
            let mut updated = profile.unwrap_or_default();
            updated.merge(&eval.cost_profile());
            if let Err(e) = updated.save(&path) {
                eprintln!("JAVAFLOW_COST_PROFILE: could not persist {}: {e}", path.display());
            }
        }
        eval
    }

    /// The run-cost profile observed by this sweep: every sample's
    /// scheduler-event count keyed by its record's static length. Feeds
    /// the tail-first dispatch of later sweeps (persisted via
    /// `JAVAFLOW_COST_PROFILE`).
    #[must_use]
    pub fn cost_profile(&self) -> CostProfile {
        let mut p = CostProfile::new();
        for s in &self.samples {
            p.observe(self.records[s.record].len(), s.report.events);
        }
        p
    }

    fn baseline_index(&self) -> usize {
        self.configs.iter().position(|c| c.collapsed).unwrap_or(0)
    }

    /// Record indices passing a filter.
    pub fn filtered(&self, filter: Filter) -> Vec<usize> {
        (0..self.records.len()).filter(|i| filter.matches(&self.records[*i])).collect()
    }

    /// Sample lookup: `(record, config, bp)` → report, when it returned.
    ///
    /// O(1) via the index built at the end of [`Evaluation::run`]; at most
    /// one sample exists per key.
    #[must_use]
    pub fn sample(&self, record: usize, config: usize, bp: BranchMode) -> Option<&ExecReport> {
        self.sample_index
            .get(&(record, config, bp))
            .map(|&i| &self.samples[i])
            .filter(|s| s.ok)
            .map(|s| &s.report)
    }

    /// IPC and Figure-of-Merit rows per configuration under a filter
    /// (Tables 21/22/24/25).
    #[must_use]
    pub fn config_rows(&self, filter: Filter) -> Vec<ConfigRow> {
        let base = self.baseline_index();
        let selected = self.filtered(filter);
        let mut rows = Vec::new();
        for (ci, fc) in self.configs.iter().enumerate() {
            let mut ipcs = Vec::new();
            let mut foms = Vec::new();
            for &ri in &selected {
                for bp in [BranchMode::Bp1, BranchMode::Bp2] {
                    let Some(rep) = self.sample(ri, ci, bp) else { continue };
                    ipcs.push(rep.ipc);
                    if let Some(baseline) = self.sample(ri, base, bp) {
                        if baseline.ipc > 0.0 {
                            foms.push(rep.ipc / baseline.ipc);
                        }
                    }
                }
            }
            let ipc = Summary::of(&ipcs).unwrap_or(Summary {
                mean: 0.0,
                std_dev: 0.0,
                median: 0.0,
                max: 0.0,
                min: 0.0,
                n: 0,
            });
            let fom = Summary::of(&foms).unwrap_or(Summary {
                mean: 0.0,
                std_dev: 0.0,
                median: 0.0,
                max: 0.0,
                min: 0.0,
                n: 0,
            });
            rows.push(ConfigRow { name: fc.name, ipc, fom });
        }
        rows
    }

    /// Mean execution coverage per branch script (Table 18).
    #[must_use]
    pub fn coverage(&self, bp: BranchMode) -> f64 {
        let base = self.baseline_index();
        let mut total = 0.0;
        let mut n = 0usize;
        for s in &self.samples {
            if s.config == base && s.bp == bp && s.ok {
                total += s.report.coverage;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total / n as f64
        }
    }

    /// Mean nodes-spanned / instructions ratio per configuration
    /// (Table 19); detail summary for one configuration (Table 20).
    #[must_use]
    pub fn span_summary(&self, config: usize, filter: Filter) -> Option<Summary> {
        let vals: Vec<f64> = self
            .filtered(filter)
            .into_iter()
            .filter_map(|ri| {
                let v = self.statics[ri].span_ratio[config];
                v.is_finite().then_some(v)
            })
            .collect();
        Summary::of(&vals)
    }

    /// Mean fraction of time with ≥2 instructions executing, per
    /// configuration (Table 26).
    #[must_use]
    pub fn parallelism(&self) -> Vec<(&'static str, f64)> {
        self.configs
            .iter()
            .enumerate()
            .map(|(ci, fc)| {
                let mut total = 0.0;
                let mut n = 0usize;
                for s in &self.samples {
                    if s.config == ci && s.ok {
                        total += s.report.frac_cycles_ge2;
                        n += 1;
                    }
                }
                (fc.name, if n == 0 { 0.0 } else { total / n as f64 })
            })
            .collect()
    }

    /// Folds every sample of the sweep into one instrumentation registry
    /// (Table 30 and the `"metrics"` block of the `BENCH_*.json`
    /// artifacts). Per-class execution-tick totals are derived with each
    /// sample's own configuration timing.
    #[must_use]
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        for s in &self.samples {
            reg.observe_report(&s.report, self.configs[s.config].class_ticks());
        }
        reg
    }

    /// Correlations of the hetero-configuration Figure of Merit with
    /// method characteristics (Table 23). Returns
    /// `(factor name, correlation)` pairs.
    #[must_use]
    pub fn correlations(&self, hetero_config: usize, filter: Filter) -> Vec<(&'static str, f64)> {
        let base = self.baseline_index();
        let mut fm = Vec::new();
        let mut total_i = Vec::new();
        let mut executed = Vec::new();
        let mut max_node = Vec::new();
        let mut back_jumps = Vec::new();
        for ri in self.filtered(filter) {
            let (Some(h), Some(b)) = (
                self.sample(ri, hetero_config, BranchMode::Bp1),
                self.sample(ri, base, BranchMode::Bp1),
            ) else {
                continue;
            };
            if b.ipc <= 0.0 {
                continue;
            }
            fm.push(h.ipc / b.ipc);
            total_i.push(self.statics[ri].static_len as f64);
            executed.push(h.executed as f64);
            max_node.push(
                self.statics[ri].span_ratio[hetero_config] * self.statics[ri].static_len as f64,
            );
            back_jumps.push(self.statics[ri].back_jumps.0 as f64);
        }
        vec![
            ("Total I", pearson(&fm, &total_i).unwrap_or(0.0)),
            ("Executed I", pearson(&fm, &executed).unwrap_or(0.0)),
            ("Max Node", pearson(&fm, &max_node).unwrap_or(0.0)),
            ("Back Jumps", pearson(&fm, &back_jumps).unwrap_or(0.0)),
        ]
    }

    /// Per-hot-method Figures of Merit for a suite generation (Tables
    /// 27/28). Rows are `(benchmark, method name, total insts, hetero
    /// nodes spanned, fm per config)`.
    #[must_use]
    pub fn hot_method_rows(
        &self,
        suite: SuiteKind,
    ) -> Vec<(&'static str, String, usize, usize, Vec<f64>)> {
        let base = self.baseline_index();
        let hetero = self
            .configs
            .iter()
            .position(|c| c.layout == javaflow_fabric::Layout::Heterogeneous)
            .unwrap_or(self.configs.len() - 1);
        let mut rows = Vec::new();
        for (ri, rec) in self.records.iter().enumerate() {
            if rec.suite != Some(suite) || !rec.is_hot() {
                continue;
            }
            if !Filter::Filter1.matches(rec) {
                continue;
            }
            let mut fms = Vec::new();
            for ci in 0..self.configs.len() {
                let fm = match (
                    self.sample(ri, ci, BranchMode::Bp1),
                    self.sample(ri, base, BranchMode::Bp1),
                ) {
                    (Some(c), Some(b)) if b.ipc > 0.0 => c.ipc / b.ipc,
                    _ => f64::NAN,
                };
                fms.push(fm);
            }
            let spanned = (self.statics[ri].span_ratio[hetero] * rec.len() as f64).round() as usize;
            rows.push((
                rec.benchmark.unwrap_or("?"),
                rec.method.name.clone(),
                rec.len(),
                spanned,
                fms,
            ));
        }
        rows.sort_by(|a, b| a.0.cmp(b.0).then(a.1.cmp(&b.1)));
        rows
    }

    /// Summaries of per-method dataflow statistics under a filter
    /// (Tables 9–14): returns named summaries.
    #[must_use]
    pub fn dataflow_summaries(&self, filter: Filter) -> Vec<(&'static str, Summary)> {
        let sel = self.filtered(filter);
        let grab = |f: &dyn Fn(usize) -> f64| -> Vec<f64> { sel.iter().map(|&i| f(i)).collect() };
        let mut out = Vec::new();
        let pairs: Vec<(&'static str, Vec<f64>)> = vec![
            ("Static Inst", grab(&|i| self.statics[i].static_len as f64)),
            ("Local Regs", grab(&|i| f64::from(self.statics[i].max_locals))),
            ("Stack", grab(&|i| f64::from(self.statics[i].max_stack))),
            ("Back Merge", grab(&|i| f64::from(self.statics[i].resolve.back_merges))),
            ("FanOut Avg", grab(&|i| self.statics[i].resolve.fanout_avg)),
            ("FanOut Max", grab(&|i| f64::from(self.statics[i].resolve.fanout_max))),
            ("Arc Avg", grab(&|i| self.statics[i].resolve.arc_avg)),
            ("Arc Max", grab(&|i| f64::from(self.statics[i].resolve.arc_max))),
            ("Max Q Up", grab(&|i| f64::from(self.statics[i].resolve.max_up_queue))),
            ("Merges", grab(&|i| f64::from(self.statics[i].resolve.merges))),
            ("Fwd Jumps", grab(&|i| self.statics[i].fwd_jumps.0 as f64)),
            ("Fwd Avg Len", grab(&|i| self.statics[i].fwd_jumps.1)),
            ("Fwd Max Len", grab(&|i| f64::from(self.statics[i].fwd_jumps.2))),
            ("Back Jumps", grab(&|i| self.statics[i].back_jumps.0 as f64)),
            ("Back Avg Len", grab(&|i| self.statics[i].back_jumps.1)),
            ("Back Max Len", grab(&|i| f64::from(self.statics[i].back_jumps.2))),
        ];
        for (name, vals) in pairs {
            if let Some(s) = Summary::of(&vals) {
                out.push((name, s));
            }
        }
        out
    }
}

/// Builds the dispatch schedule: record indices in **descending**
/// predicted cost (ties broken by index, so the order is deterministic).
///
/// The predictor is the record's static instruction count — the routing
/// graph a [`prepare`] produces is node-per-instruction, so length is the
/// graph size — refined to predicted scheduler events when a persisted
/// [`CostProfile`] is available. Every record contributes the same number
/// of scripted runs (configs × branch scripts), so per-run cost orders
/// the records directly.
pub(crate) fn cost_schedule(records: &[MethodRecord], profile: Option<&CostProfile>) -> Vec<u32> {
    let cost: Vec<u64> =
        records.iter().map(|r| profile.map_or(r.len() as u64, |p| p.predict(r.len()))).collect();
    let mut schedule: Vec<u32> = (0..records.len() as u32).collect();
    schedule.sort_by(|&a, &b| cost[b as usize].cmp(&cost[a as usize]).then(a.cmp(&b)));
    schedule
}

/// The complete (pure) per-record work unit: statics plus the scripted
/// runs over every configuration and both branch scripts.
///
/// Resolution and the routing graph are configuration-independent, so the
/// record is [`prepare`]d exactly once and each configuration only adds a
/// placement; the caller's arena is reused across every run.
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_record(
    ri: usize,
    rec: &MethodRecord,
    configs: &[FabricConfig],
    max_mesh_cycles: u64,
    fast_forward: bool,
    compiled: bool,
    arena: &mut SimArena,
) -> (MethodStatics, Vec<Sample>) {
    let prepared = prepare(&rec.method).ok();
    eval_prepared(
        ri,
        rec,
        prepared.as_ref(),
        configs,
        max_mesh_cycles,
        fast_forward,
        compiled,
        arena,
    )
}

/// [`eval_record`] with the [`prepare`] step hoisted out, so a resident
/// process (`core::service`) can cache the prepared parts across sweeps
/// and still run the *same* statics/sample assembly — byte-identity of
/// served results against [`Evaluation::run`] is structural, not luck.
/// `prepared` is `None` for fabric-inexecutable methods (jsr/switches).
#[allow(clippy::too_many_arguments)]
pub(crate) fn eval_prepared(
    ri: usize,
    rec: &MethodRecord,
    prepared: Option<&javaflow_fabric::PreparedMethod<'_>>,
    configs: &[FabricConfig],
    max_mesh_cycles: u64,
    fast_forward: bool,
    compiled: bool,
    arena: &mut SimArena,
) -> (MethodStatics, Vec<Sample>) {
    let v = verify(&rec.method).expect("population verifies");
    let g = Cfg::build(&rec.method);
    let resolve_stats = match &prepared {
        Some(p) => p.resolved.stats.clone(),
        // Fabric-inexecutable methods (jsr/switches) never run, but still
        // contribute resolution statistics to the static tables.
        None => resolve(&rec.method).expect("population resolves").stats,
    };

    let mut span_ratio = Vec::with_capacity(configs.len());
    let mut loadable = Vec::with_capacity(configs.len());
    let mut placements = Vec::with_capacity(configs.len());
    for fc in configs {
        match place(&rec.method, fc) {
            Ok(p) => {
                span_ratio.push(p.span_ratio());
                loadable.push(true);
                placements.push(Some(p));
            }
            Err(_) => {
                span_ratio.push(f64::NAN);
                loadable.push(false);
                placements.push(None);
            }
        }
    }
    let statics = MethodStatics {
        static_len: rec.method.len(),
        max_locals: rec.method.max_locals,
        max_stack: v.max_stack,
        resolve: resolve_stats,
        fwd_jumps: g.forward_jump_stats(),
        back_jumps: g.back_jump_stats(),
        span_ratio,
        loadable,
    };

    let mut samples = Vec::new();
    if let Some(prepared) = prepared {
        for (ci, fc) in configs.iter().enumerate() {
            let Some(placement) = placements[ci].take() else { continue };
            let loaded = prepared.with_placement(placement);
            for bp in [BranchMode::Bp1, BranchMode::Bp2] {
                let report =
                    run_scripted(&loaded, fc, bp, max_mesh_cycles, fast_forward, compiled, arena);
                let ok = matches!(report.outcome, Outcome::Returned(_));
                samples.push(Sample { record: ri, config: ci, bp, report, ok });
            }
        }
    }
    (statics, samples)
}

fn run_scripted(
    loaded: &LoadedMethod<'_>,
    fc: &FabricConfig,
    bp: BranchMode,
    max_mesh_cycles: u64,
    fast_forward: bool,
    compiled: bool,
    arena: &mut SimArena,
) -> ExecReport {
    javaflow_fabric::execute_in(
        loaded,
        fc,
        ExecParams { mode: bp, max_mesh_cycles, fast_forward, compiled, ..ExecParams::default() },
        arena,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_eval() -> Evaluation {
        Evaluation::run(&EvalConfig {
            synthetic_count: 12,
            max_mesh_cycles: 150_000,
            ..EvalConfig::default()
        })
    }

    #[test]
    fn evaluation_produces_samples_for_all_configs() {
        let e = small_eval();
        assert_eq!(e.configs.len(), 6);
        for ci in 0..6 {
            let n = e.samples.iter().filter(|s| s.config == ci).count();
            assert!(n > 0, "config {ci} produced no samples");
        }
        // The overwhelming majority of runs must return.
        let ok = e.samples.iter().filter(|s| s.ok).count();
        assert!(
            ok as f64 / e.samples.len() as f64 > 0.9,
            "only {ok}/{} samples returned",
            e.samples.len()
        );
    }

    #[test]
    fn fom_ordering_matches_chapter_7() {
        let e = small_eval();
        let rows = e.config_rows(Filter::All);
        let by_name: std::collections::HashMap<&str, f64> =
            rows.iter().map(|r| (r.name, r.fom.mean)).collect();
        assert!((by_name["Baseline"] - 1.0).abs() < 1e-9);
        assert!(by_name["Compact10"] >= by_name["Compact4"]);
        assert!(by_name["Compact4"] >= by_name["Compact2"]);
        assert!(by_name["Compact2"] >= by_name["Sparse2"]);
        assert!(by_name["Sparse2"] >= by_name["Hetero2"] - 0.05);
        // The headline: Hetero2 lands near 40% of baseline.
        assert!(
            (0.15..0.85).contains(&by_name["Hetero2"]),
            "Hetero2 FoM {} out of plausible range",
            by_name["Hetero2"]
        );
    }

    #[test]
    fn span_ratios_match_table_19() {
        let e = small_eval();
        // Homogeneous compact configurations span exactly 1 node per
        // instruction, sparse ≈ 2, heterogeneous ≈ 3.
        let compact = e.span_summary(3, Filter::Filter1).unwrap();
        assert!((compact.mean - 1.0).abs() < 1e-9);
        let sparse = e.span_summary(4, Filter::Filter1).unwrap();
        assert!((sparse.mean - 2.0).abs() < 0.1, "sparse {}", sparse.mean);
        let hetero = e.span_summary(5, Filter::Filter1).unwrap();
        assert!((2.2..4.5).contains(&hetero.mean), "hetero {}", hetero.mean);
    }

    #[test]
    fn contended_sweep_attaches_net_stats() {
        let e = Evaluation::run(&EvalConfig {
            synthetic_count: 4,
            max_mesh_cycles: 150_000,
            net: NetKind::Contended,
            ..EvalConfig::default()
        });
        assert!(e.configs.iter().all(|c| c.net == NetKind::Contended));
        assert!(!e.samples.is_empty());
        assert!(e.samples.iter().all(|s| s.report.net.is_some()));
        // The ideal sweep attaches nothing.
        let ideal = Evaluation::run(&EvalConfig {
            synthetic_count: 4,
            max_mesh_cycles: 150_000,
            ..EvalConfig::default()
        });
        assert!(ideal.samples.iter().all(|s| s.report.net.is_none()));
    }

    #[test]
    fn no_back_merges_anywhere() {
        let e = small_eval();
        for (s, r) in e.statics.iter().zip(&e.records) {
            assert_eq!(s.resolve.back_merges, 0, "{} has back merges", r.name);
        }
    }

    #[test]
    fn coverage_in_chapter_7_range() {
        let e = small_eval();
        for bp in [BranchMode::Bp1, BranchMode::Bp2] {
            let c = e.coverage(bp);
            assert!((0.5..=1.0).contains(&c), "coverage {c} for {bp:?}");
        }
    }

    #[test]
    fn parallelism_decreases_with_distance() {
        let e = small_eval();
        let p = e.parallelism();
        let map: std::collections::HashMap<&str, f64> = p.into_iter().collect();
        assert!(map["Baseline"] >= map["Hetero2"], "{map:?}");
    }
}

//! The user-facing JavaFlow machine: load a program, deploy methods to the
//! DataFlow fabric, and execute them with real data against the GPP-backed
//! heap — the whole Figure 12 system in one handle.

use javaflow_bytecode::{MethodId, Program, Value};
use javaflow_fabric::{
    execute, load, BranchMode, ExecParams, ExecReport, FabricConfig, Gpp, LoadError, Outcome,
};
use javaflow_interp::{Interp, JvmError};

/// A JavaFlow machine instance: a DataFlow fabric plus its controlling GPP
/// and shared memory subsystem.
#[derive(Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    config: FabricConfig,
    gpp: Interp<'p>,
}

/// The result of running a method on the fabric.
#[derive(Debug, Clone)]
pub struct MachineRun {
    /// The returned value (if the method returns one).
    pub value: Option<Value>,
    /// Cycle-level execution report.
    pub report: ExecReport,
}

/// A machine-level failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum MachineError {
    /// The method could not be deployed to the fabric.
    Load(LoadError),
    /// Execution raised a JVM exception (delegated to the GPP).
    Exception(JvmError),
    /// The run exhausted its cycle budget.
    Timeout,
    /// The dataflow deadlocked (invalid program).
    Deadlock,
    /// No method with the requested name exists.
    UnknownMethod(String),
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::Load(e) => write!(fm, "load: {e}"),
            MachineError::Exception(e) => write!(fm, "exception: {e}"),
            MachineError::Timeout => write!(fm, "timeout"),
            MachineError::Deadlock => write!(fm, "dataflow deadlock"),
            MachineError::UnknownMethod(n) => write!(fm, "unknown method `{n}`"),
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Load(e) => Some(e),
            MachineError::Exception(e) => Some(e),
            _ => None,
        }
    }
}

impl<'p> Machine<'p> {
    /// Creates a machine over a program with the given fabric
    /// configuration. Heap and static state persist across runs.
    #[must_use]
    pub fn new(program: &'p Program, config: FabricConfig) -> Machine<'p> {
        Machine { program, config, gpp: Interp::new(program) }
    }

    /// The fabric configuration.
    #[must_use]
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// The controlling GPP (for heap setup/inspection).
    pub fn gpp_mut(&mut self) -> &mut Interp<'p> {
        &mut self.gpp
    }

    /// Read access to the GPP.
    #[must_use]
    pub fn gpp(&self) -> &Interp<'p> {
        &self.gpp
    }

    /// Deploys `method` to the fabric and executes it with `args`,
    /// data-driven (branches evaluate real operands; memory and calls hit
    /// the shared GPP state).
    ///
    /// # Errors
    ///
    /// See [`MachineError`].
    pub fn run(&mut self, method: MethodId, args: &[Value]) -> Result<MachineRun, MachineError> {
        let m = self.program.method(method);
        let loaded = load(m, &self.config).map_err(MachineError::Load)?;
        let report = execute(
            &loaded,
            &self.config,
            ExecParams {
                mode: BranchMode::Data,
                gpp: Gpp::Interp(&mut self.gpp),
                args: args.to_vec(),
                ..ExecParams::default()
            },
        );
        match report.outcome.clone() {
            Outcome::Returned(value) => Ok(MachineRun { value, report }),
            Outcome::Exception(e) => Err(MachineError::Exception(e)),
            Outcome::Timeout => Err(MachineError::Timeout),
            Outcome::Deadlock => Err(MachineError::Deadlock),
        }
    }

    /// [`Machine::run`] by method name.
    ///
    /// # Errors
    ///
    /// See [`MachineError`].
    pub fn run_named(&mut self, name: &str, args: &[Value]) -> Result<MachineRun, MachineError> {
        let (id, _) = self
            .program
            .method_by_name(name)
            .ok_or_else(|| MachineError::UnknownMethod(name.to_string()))?;
        self.run(id, args)
    }

    /// Runs the same method on the GPP alone (interpreter), for
    /// fabric-vs-GPP comparisons. Shares the machine's heap state.
    ///
    /// # Errors
    ///
    /// Propagates interpreter exceptions.
    pub fn run_on_gpp(
        &mut self,
        method: MethodId,
        args: &[Value],
    ) -> Result<Option<Value>, MachineError> {
        self.gpp.run(method, args).map_err(MachineError::Exception)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::asm::assemble;

    #[test]
    fn machine_runs_named_methods() {
        let p = assemble(
            ".method inc args=1 returns=true locals=1
               iload 0
               iconst_1
               iadd
               ireturn
             .end",
        )
        .unwrap();
        let mut m = Machine::new(&p, FabricConfig::compact2());
        let run = m.run_named("inc", &[Value::Int(41)]).unwrap();
        assert_eq!(run.value, Some(Value::Int(42)));
        assert!(run.report.mesh_cycles > 0);
        assert!(matches!(m.run_named("nope", &[]), Err(MachineError::UnknownMethod(_))));
    }

    #[test]
    fn heap_state_persists_across_runs() {
        let p = assemble(
            ".class Counter fields=0 statics=1
             .method bump args=0 returns=true locals=0
               getstatic Counter 0
               iconst_1
               iadd
               dup
               putstatic Counter 0
               ireturn
             .end",
        )
        .unwrap();
        let mut m = Machine::new(&p, FabricConfig::compact4());
        assert_eq!(m.run_named("bump", &[]).unwrap().value, Some(Value::Int(1)));
        assert_eq!(m.run_named("bump", &[]).unwrap().value, Some(Value::Int(2)));
        assert_eq!(
            m.run_on_gpp(p.method_by_name("bump").unwrap().0, &[]).unwrap(),
            Some(Value::Int(3))
        );
        assert_eq!(m.run_named("bump", &[]).unwrap().value, Some(Value::Int(4)));
    }
}

//! The sweep scheduler: chunked work-stealing with cost-ordered dispatch.
//!
//! The harness's per-record work is pure (each record's simulation touches
//! nothing shared), so the sweep parallelizes as a deterministic map. The
//! original implementation claimed one record per `fetch_add`, which put an
//! exclusive-mode cache-line transfer on a single counter between every
//! pair of ~microsecond runs; once the timing-wheel kernel and token-walk
//! fast-forwarding collapsed per-run cost, that coordination overhead ate
//! the whole parallel win (`parallel_speedup` ≈ 1.0 at any core count).
//!
//! [`sweep_ordered`] restructures the workers so coordination is amortized
//! over *batches*:
//!
//! * **Chunked claims.** Workers claim contiguous batches of schedule
//!   positions from a shared cursor — guided self-scheduling, batch size
//!   `remaining / (threads × 4)` capped at [`MAX_BATCH`] and halving
//!   toward the tail — so the shared atomic is touched once per batch, not
//!   once per record.
//! * **Work stealing.** Each worker exposes its in-progress batch as a
//!   packed `(cursor, end)` range in a cache-line-padded atomic; an idle
//!   worker with nothing left to claim steals the upper half of a victim's
//!   remaining range. Load imbalance from a long-tail cost distribution
//!   (the `events_per_run` histogram spans 18 … 548k events) therefore
//!   self-corrects without any per-record locking.
//! * **Cost-ordered dispatch.** The caller passes a `schedule` — a
//!   permutation of record indices, typically descending by predicted
//!   cost (see `Evaluation::run`) — so the stragglers start first and the
//!   cheap tail fills the gaps, bounding the join wait by one record
//!   instead of one record *started last*.
//! * **Order-preserving splice.** Workers append `(index, result)` pairs
//!   to pre-sized private slabs; the join splices them back by original
//!   index in O(n) with no sort. Output is bit-identical to the serial
//!   map at any thread count and under any schedule or steal pattern.
//!
//! Worker states (e.g. simulation arenas) are built by `state_init` and
//! handed back through `state_done`, which lets the harness keep arenas
//! warm in a pool across whole sweeps. Built on [`std::thread::scope`] —
//! no runtime dependency.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Upper bound on one claimed batch, in records. Keeps early batches
/// stealable: with a cost-descending schedule the head of the queue holds
/// the expensive records, and a cap bounds how much predicted work a
/// single claim can hoard before thieves can redistribute it.
const MAX_BATCH: usize = 32;

/// Parses a `JAVAFLOW_THREADS` override: `None` when unset, `Ok(n)` for a
/// valid count ≥ 1, `Err(raw)` for a rejected value.
fn thread_override(v: Option<&std::ffi::OsStr>) -> Option<Result<usize, String>> {
    let v = v?;
    match v.to_str().and_then(|s| s.trim().parse::<usize>().ok()).filter(|&n| n >= 1) {
        Some(n) => Some(Ok(n)),
        None => Some(Err(v.to_string_lossy().into_owned())),
    }
}

/// Worker-thread count: the `JAVAFLOW_THREADS` environment override when
/// set (and ≥ 1), otherwise [`std::thread::available_parallelism`].
///
/// An invalid override (`0`, `abc`, …) is rejected with a one-line stderr
/// warning naming the value, then falls back to available parallelism —
/// silently running serial because of a typo'd variable wastes every
/// core.
#[must_use]
pub fn default_threads() -> usize {
    match thread_override(std::env::var_os("JAVAFLOW_THREADS").as_deref()) {
        Some(Ok(n)) => return n,
        Some(Err(raw)) => eprintln!(
            "JAVAFLOW_THREADS: ignoring invalid value `{raw}` (want an integer >= 1); \
             falling back to available parallelism"
        ),
        None => {}
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One worker's share of a sweep, for the utilization block of the
/// `BENCH_*.json` artifacts.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkerStats {
    /// Records this worker executed.
    pub records_done: u64,
    /// Wall time spent inside the per-record closure (excludes claim,
    /// steal, and idle time).
    pub busy_secs: f64,
    /// Batches claimed from the shared queue.
    pub batches: u64,
    /// Batches stolen from other workers' in-progress ranges.
    pub steals: u64,
}

/// Scheduling telemetry from one sweep. Unlike the results, the stats are
/// *not* deterministic — they describe the actual claim/steal pattern.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepStats {
    /// Workers actually spawned (`min(threads, items)`; 1 = inline).
    pub threads_used: usize,
    /// Per-worker utilization, index = worker id.
    pub workers: Vec<WorkerStats>,
}

impl SweepStats {
    /// Adapts the per-worker stats into the analysis crate's
    /// serialization-side [`WorkerUtilization`] rows (the `"utilization"`
    /// block of the `BENCH_*.json` artifacts and the server's metrics
    /// frames). Lives here because `analysis` cannot see this crate's
    /// types — the dependency points the other way.
    #[must_use]
    pub fn utilization(&self) -> Vec<javaflow_analysis::report_json::WorkerUtilization> {
        self.workers
            .iter()
            .map(|w| javaflow_analysis::report_json::WorkerUtilization {
                records_done: w.records_done,
                busy_secs: w.busy_secs,
                batches: w.batches,
                steals: w.steals,
            })
            .collect()
    }

    fn inline(records: u64, busy_secs: f64) -> SweepStats {
        SweepStats {
            threads_used: 1,
            workers: vec![WorkerStats { records_done: records, busy_secs, batches: 1, steals: 0 }],
        }
    }
}

/// Results plus scheduling telemetry from [`sweep_ordered`].
#[derive(Debug)]
pub struct SweepOutcome<R> {
    /// Per-item results, in item order (not schedule order).
    pub results: Vec<R>,
    /// Scheduling telemetry.
    pub stats: SweepStats,
}

/// A worker's in-progress range of schedule positions, packed
/// `(cursor, end)` into one atomic so owner pops and thief splits are
/// single CAS operations. Padded to its own cache line: the whole point
/// of batching is that workers advance private cursors without
/// invalidating each other's lines.
#[repr(align(128))]
#[derive(Default)]
struct WorkerSlot {
    range: AtomicU64,
}

fn pack(cursor: u32, end: u32) -> u64 {
    (u64::from(end) << 32) | u64::from(cursor)
}

fn unpack(v: u64) -> (u32, u32) {
    (v as u32, (v >> 32) as u32)
}

impl WorkerSlot {
    /// Owner side: takes the next position of the current batch.
    fn pop(&self) -> Option<u32> {
        let mut cur = self.range.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if lo >= hi {
                return None;
            }
            match self.range.compare_exchange_weak(
                cur,
                pack(lo + 1, hi),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(lo),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Installs a freshly claimed or stolen batch (the slot must be
    /// drained — only the owner installs).
    fn install(&self, lo: u32, hi: u32) {
        self.range.store(pack(lo, hi), Ordering::Release);
    }

    /// Thief side: splits off the upper half of the victim's remaining
    /// range. A single leftover item stays with its owner.
    fn steal_half(&self) -> Option<(u32, u32)> {
        let mut cur = self.range.load(Ordering::Acquire);
        loop {
            let (lo, hi) = unpack(cur);
            if hi.saturating_sub(lo) < 2 {
                return None;
            }
            let mid = lo + (hi - lo) / 2;
            match self.range.compare_exchange_weak(
                cur,
                pack(lo, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, hi)),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// The shared claim queue: a cursor over `0..len` schedule positions,
/// handed out in guided batches (`remaining / (threads × 4)`, clamped to
/// `1..=MAX_BATCH`) so batch size halves toward the tail and the final
/// records interleave finely across workers.
struct ClaimQueue {
    cursor: AtomicUsize,
    len: usize,
    threads: usize,
}

impl ClaimQueue {
    fn claim(&self) -> Option<(u32, u32)> {
        let mut cur = self.cursor.load(Ordering::Relaxed);
        loop {
            if cur >= self.len {
                return None;
            }
            let remaining = self.len - cur;
            let batch = (remaining / (self.threads * 4)).clamp(1, MAX_BATCH);
            match self.cursor.compare_exchange_weak(
                cur,
                cur + batch,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some((cur as u32, (cur + batch) as u32)),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Maps `f` over `items` on up to `threads` workers, dispatching in
/// `schedule` order (a permutation of `0..items.len()`, typically
/// descending by predicted cost) with chunked work-stealing, and splices
/// the results back **in item order**. Each worker carries a reusable
/// state built by `state_init` and released through `state_done` (e.g. a
/// simulation arena checked out of / returned to a warm pool).
///
/// With `threads == 1` (or ≤ 1 item) the map runs inline on the calling
/// thread in schedule order — the serial path exercises the same dispatch
/// order as the parallel one.
///
/// # Panics
///
/// Propagates worker panics; panics if `schedule` is not a permutation of
/// `0..items.len()` (debug builds check explicitly, release builds panic
/// on the resulting splice hole) or if `items.len()` exceeds `u32::MAX`.
pub fn sweep_ordered<T, S, R>(
    items: &[T],
    threads: usize,
    schedule: &[u32],
    state_init: impl Fn() -> S + Sync,
    state_done: impl Fn(S) + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> SweepOutcome<R>
where
    T: Sync,
    R: Send,
{
    let n = items.len();
    assert!(n <= u32::MAX as usize, "sweep is limited to u32::MAX items");
    assert_eq!(schedule.len(), n, "schedule must cover every item exactly once");
    debug_assert!(
        {
            let mut seen = vec![false; n];
            schedule.iter().all(|&p| {
                let fresh = (p as usize) < n && !seen[p as usize];
                if fresh {
                    seen[p as usize] = true;
                }
                fresh
            })
        },
        "schedule is not a permutation of 0..{n}"
    );

    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        let start = Instant::now();
        let mut state = state_init();
        let mut results: Vec<Option<R>> = Vec::with_capacity(n);
        results.resize_with(n, || None);
        for &pos in schedule {
            let i = pos as usize;
            results[i] = Some(f(&mut state, i, &items[i]));
        }
        state_done(state);
        let results: Vec<R> =
            results.into_iter().map(|r| r.expect("schedule covered every item")).collect();
        return SweepOutcome {
            results,
            stats: SweepStats::inline(n as u64, start.elapsed().as_secs_f64()),
        };
    }

    let queue = ClaimQueue { cursor: AtomicUsize::new(0), len: n, threads };
    let slots: Vec<WorkerSlot> = (0..threads).map(|_| WorkerSlot::default()).collect();

    let mut per_worker: Vec<(Vec<(u32, R)>, WorkerStats)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let (queue, slots, schedule) = (&queue, &slots, schedule);
                let (state_init, state_done, f) = (&state_init, &state_done, &f);
                scope.spawn(move || {
                    let mut state = state_init();
                    let mut out: Vec<(u32, R)> = Vec::with_capacity(n);
                    let mut stats = WorkerStats::default();
                    'work: loop {
                        // Drain the current batch from the worker's own
                        // slot (thieves may shrink it concurrently).
                        while let Some(pos) = slots[w].pop() {
                            let i = schedule[pos as usize] as usize;
                            let t = Instant::now();
                            out.push((i as u32, f(&mut state, i, &items[i])));
                            stats.busy_secs += t.elapsed().as_secs_f64();
                            stats.records_done += 1;
                        }
                        // Claim the next guided batch.
                        if let Some((lo, hi)) = queue.claim() {
                            slots[w].install(lo, hi);
                            stats.batches += 1;
                            continue;
                        }
                        // Nothing left to claim: steal half of a victim's
                        // remaining batch. Two sweeps with a yield in
                        // between, so a batch installed concurrently with
                        // the first sweep is still picked up.
                        for attempt in 0..2 {
                            for off in 1..threads {
                                let v = (w + off) % threads;
                                if let Some((lo, hi)) = slots[v].steal_half() {
                                    slots[w].install(lo, hi);
                                    stats.steals += 1;
                                    continue 'work;
                                }
                            }
                            if attempt == 0 {
                                std::thread::yield_now();
                            }
                        }
                        break;
                    }
                    state_done(state);
                    (out, stats)
                })
            })
            .collect();
        for h in handles {
            per_worker.push(h.join().expect("evaluation worker panicked"));
        }
    });

    // Splice: pre-sized slab filled by original index — O(n), no sort,
    // and each worker's slab was private so nothing false-shared.
    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let mut workers = Vec::with_capacity(threads);
    for (out, stats) in per_worker {
        for (i, r) in out {
            debug_assert!(results[i as usize].is_none(), "item {i} produced twice");
            results[i as usize] = Some(r);
        }
        workers.push(stats);
    }
    let results: Vec<R> =
        results.into_iter().map(|r| r.expect("a schedule position was never claimed")).collect();
    SweepOutcome { results, stats: SweepStats { threads_used: threads, workers } }
}

/// Maps `f` over `items` on up to `threads` worker threads in item order,
/// each worker carrying a reusable state built by `state_init` (e.g. a
/// simulation arena). Results come back in item order.
///
/// This is [`sweep_ordered`] with the identity schedule and no state
/// hand-back; callers that want cost-ordered dispatch, pooled states, or
/// the utilization stats use [`sweep_ordered`] directly.
///
/// # Panics
///
/// Propagates worker panics.
pub fn par_map_with<T, S, R>(
    items: &[T],
    threads: usize,
    state_init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let identity: Vec<u32> = (0..items.len() as u32).collect();
    sweep_ordered(items, threads, &identity, state_init, |_| (), f).results
}

/// Stateless [`par_map_with`].
pub fn par_map<T, R>(items: &[T], threads: usize, f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    par_map_with(items, threads, || (), |(), i, t| f(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |i, x| x * 2 + i as u64);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |i, x| x * 2 + i as u64), serial);
        }
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker's state counts its own items; totals must cover all
        // items exactly once.
        use std::sync::atomic::AtomicUsize;
        static TOTAL: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = par_map_with(
            &items,
            4,
            || 0usize,
            |seen, _, x| {
                *seen += 1;
                TOTAL.fetch_add(1, Ordering::Relaxed);
                *x
            },
        );
        assert_eq!(out, items);
        assert_eq!(TOTAL.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn arbitrary_schedules_still_splice_in_item_order() {
        let items: Vec<u64> = (0..257).collect();
        let serial = par_map(&items, 1, |i, x| x * 3 + i as u64);
        // Reversed, interleaved, and identity dispatch orders all produce
        // the same item-ordered output.
        let n = items.len() as u32;
        let reversed: Vec<u32> = (0..n).rev().collect();
        let mut interleaved: Vec<u32> = (0..n).step_by(2).collect();
        interleaved.extend((1..n).step_by(2));
        for schedule in [&reversed, &interleaved] {
            for threads in [1, 3, 7] {
                let got = sweep_ordered(
                    &items,
                    threads,
                    schedule,
                    || (),
                    |()| (),
                    |(), i, x| x * 3 + i as u64,
                );
                assert_eq!(got.results, serial);
                assert_eq!(got.stats.threads_used, threads.min(items.len()));
                let done: u64 = got.stats.workers.iter().map(|w| w.records_done).sum();
                assert_eq!(done, items.len() as u64);
            }
        }
    }

    #[test]
    fn states_are_handed_back_through_state_done() {
        use std::sync::atomic::AtomicUsize;
        static RETURNED: AtomicUsize = AtomicUsize::new(0);
        RETURNED.store(0, Ordering::Relaxed);
        let items: Vec<u32> = (0..64).collect();
        let schedule: Vec<u32> = (0..64).collect();
        let out = sweep_ordered(
            &items,
            4,
            &schedule,
            || 7usize,
            |_state| {
                RETURNED.fetch_add(1, Ordering::Relaxed);
            },
            |_, _, x| *x,
        );
        assert_eq!(out.results, items);
        // One state per spawned worker comes back through the hook.
        assert_eq!(RETURNED.load(Ordering::Relaxed), out.stats.threads_used);
    }

    #[test]
    fn slot_steal_takes_upper_half_and_leaves_singletons() {
        let slot = WorkerSlot::default();
        slot.install(10, 20);
        assert_eq!(slot.steal_half(), Some((15, 20)));
        assert_eq!(slot.pop(), Some(10));
        slot.install(5, 6);
        assert_eq!(slot.steal_half(), None, "a single item stays with its owner");
        assert_eq!(slot.pop(), Some(5));
        assert_eq!(slot.pop(), None);
    }

    #[test]
    fn guided_batches_shrink_toward_the_tail() {
        let q = ClaimQueue { cursor: AtomicUsize::new(0), len: 1600, threads: 4 };
        let (first_lo, first_hi) = q.claim().unwrap();
        assert_eq!(first_lo, 0);
        assert!((first_hi - first_lo) as usize <= MAX_BATCH);
        let mut last = (first_hi - first_lo) as usize;
        let mut total = last;
        while let Some((lo, hi)) = q.claim() {
            let size = (hi - lo) as usize;
            assert!(size <= last.max(1), "batches must not grow toward the tail");
            assert!(size >= 1);
            last = size;
            total += size;
        }
        assert_eq!(total, 1600, "claims must cover the queue exactly");
        assert_eq!(last, 1, "the tail hands out single records");
    }

    #[test]
    fn thread_override_parses_and_rejects() {
        use std::ffi::OsStr;
        assert_eq!(thread_override(None), None);
        assert_eq!(thread_override(Some(OsStr::new("4"))), Some(Ok(4)));
        assert_eq!(thread_override(Some(OsStr::new(" 2 "))), Some(Ok(2)));
        assert_eq!(thread_override(Some(OsStr::new("0"))), Some(Err("0".into())));
        assert_eq!(thread_override(Some(OsStr::new("abc"))), Some(Err("abc".into())));
        assert_eq!(thread_override(Some(OsStr::new(""))), Some(Err(String::new())));
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}

//! Order-preserving fork/join helpers for the evaluation sweep.
//!
//! The harness's per-record work is pure (each record's simulation touches
//! nothing shared), so the sweep parallelizes as a deterministic map:
//! workers claim record indices from an atomic counter, and the results
//! are spliced back **in record order**, making the parallel output
//! bit-identical to the serial one regardless of thread count or
//! scheduling. Built on [`std::thread::scope`] — no runtime dependency.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Worker-thread count: the `JAVAFLOW_THREADS` environment override when
/// set (and ≥ 1), otherwise [`std::thread::available_parallelism`].
#[must_use]
pub fn default_threads() -> usize {
    if let Some(v) = std::env::var_os("JAVAFLOW_THREADS") {
        if let Some(n) = v.to_str().and_then(|s| s.trim().parse::<usize>().ok()) {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Maps `f` over `items` on up to `threads` worker threads, each worker
/// carrying a reusable state built by `state_init` (e.g. a simulation
/// arena). Results come back in item order.
///
/// With `threads == 1` (or one item) the map runs inline on the calling
/// thread — the serial path is the parallel path.
///
/// # Panics
///
/// Propagates worker panics.
pub fn par_map_with<T, S, R>(
    items: &[T],
    threads: usize,
    state_init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &T) -> R + Sync,
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let threads = threads.max(1).min(items.len().max(1));
    if threads == 1 {
        let mut state = state_init();
        return items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = state_init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&mut state, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            indexed.extend(h.join().expect("evaluation worker panicked"));
        }
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Stateless [`par_map_with`].
pub fn par_map<T, R>(items: &[T], threads: usize, f: impl Fn(usize, &T) -> R + Sync) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    par_map_with(items, threads, || (), |(), i, t| f(i, t))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_at_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        let serial = par_map(&items, 1, |i, x| x * 2 + i as u64);
        for threads in [2, 3, 8, 64] {
            assert_eq!(par_map(&items, threads, |i, x| x * 2 + i as u64), serial);
        }
    }

    #[test]
    fn worker_state_is_reused_not_shared() {
        // Each worker's state counts its own items; totals must cover all
        // items exactly once.
        use std::sync::atomic::AtomicUsize;
        static TOTAL: AtomicUsize = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let out = par_map_with(
            &items,
            4,
            || 0usize,
            |seen, _, x| {
                *seen += 1;
                TOTAL.fetch_add(1, Ordering::Relaxed);
                *x
            },
        );
        assert_eq!(out, items);
        assert_eq!(TOTAL.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}

//! The evaluated method population: every method of the 14-benchmark suite
//! plus the synthetic population, each tagged with its provenance so the
//! Table 16 filters and the Tables 27/28 per-benchmark views can select
//! subsets.

use javaflow_bytecode::Method;
use javaflow_workloads::{full_suite, synthetic, SuiteKind};

/// One member of the evaluated population.
#[derive(Debug, Clone)]
pub struct MethodRecord {
    /// Method name (unique within the population by construction).
    pub name: String,
    /// Owning benchmark, when the method came from the suite.
    pub benchmark: Option<&'static str>,
    /// Suite generation of the owning benchmark.
    pub suite: Option<SuiteKind>,
    /// Rank in the benchmark's hot list (0 = hottest), when hot.
    pub hot_rank: Option<usize>,
    /// The method body (standalone clone; scripted fabric execution does
    /// not resolve callees).
    pub method: Method,
}

impl MethodRecord {
    /// Whether this record is one of a benchmark's top methods (the
    /// dynamic-90% set of Filter 2).
    #[must_use]
    pub fn is_hot(&self) -> bool {
        self.hot_rank.is_some()
    }

    /// Static instruction count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.method.len()
    }

    /// Whether the method is empty (never true in practice).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.method.is_empty()
    }
}

/// Builds the population: all suite methods (hot ones tagged) plus
/// `synthetic_count` generated methods.
#[must_use]
pub fn population(synthetic_count: usize) -> Vec<MethodRecord> {
    let mut records = Vec::new();
    for bench in full_suite() {
        for (id, method) in bench.program.methods() {
            let hot_rank = bench.hot.iter().position(|h| *h == id);
            records.push(MethodRecord {
                name: format!("{}::{}", bench.name, method.name),
                benchmark: Some(bench.name),
                suite: Some(bench.suite),
                hot_rank,
                method: method.clone(),
            });
        }
    }
    if synthetic_count > 0 {
        let cfg = synthetic::GenConfig { count: synthetic_count, ..Default::default() };
        let (program, ids) = synthetic::generate(&cfg);
        for id in ids {
            let method = program.method(id);
            records.push(MethodRecord {
                name: method.name.clone(),
                benchmark: None,
                suite: None,
                hot_rank: None,
                method: method.clone(),
            });
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn population_includes_suite_and_synthetic() {
        let pop = population(25);
        let hot = pop.iter().filter(|r| r.is_hot()).count();
        let synth = pop.iter().filter(|r| r.benchmark.is_none()).count();
        assert_eq!(synth, 25);
        assert!(hot >= 14 * 2, "at least two hot methods per benchmark, found {hot}");
        assert!(pop.len() > 80);
        // The Appendix C case-study method is present.
        assert!(pop.iter().any(|r| r.name.ends_with("Random.nextDouble")));
    }

    #[test]
    fn every_population_method_verifies() {
        for r in population(10) {
            javaflow_bytecode::verify(&r.method)
                .unwrap_or_else(|e| panic!("{} fails verification: {e}", r.name));
        }
    }
}

//! The Table 16 method filters.

use crate::MethodRecord;

/// Population filters (Table 16).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Filter {
    /// Every method.
    All,
    /// `10 < instructions < 1000` — methods worth an Anchor and small
    /// enough for a ≤10K-node fabric.
    Filter1,
    /// The dynamic-90% hot methods, with the Filter 1 size limits.
    Filter2,
}

impl Filter {
    /// All filters in Table 16 order.
    pub const ALL: &'static [Filter] = &[Filter::All, Filter::Filter1, Filter::Filter2];

    /// Display label matching the dissertation.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Filter::All => "Filter All",
            Filter::Filter1 => "Filter 1",
            Filter::Filter2 => "Filter 2",
        }
    }

    /// Whether a record passes this filter.
    #[must_use]
    pub fn matches(self, record: &MethodRecord) -> bool {
        let size_ok = record.len() > 10 && record.len() < 1000;
        match self {
            Filter::All => true,
            Filter::Filter1 => size_ok,
            Filter::Filter2 => size_ok && record.is_hot(),
        }
    }
}

impl std::fmt::Display for Filter {
    fn fmt(&self, fm: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fm.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::{Insn, Method, Opcode};

    fn record(len: usize, hot: bool) -> MethodRecord {
        let mut m = Method::new("t", 0, false);
        for _ in 0..len.saturating_sub(1) {
            m.code.push(Insn::simple(Opcode::Nop));
        }
        m.code.push(Insn::simple(Opcode::ReturnVoid));
        MethodRecord {
            name: "t".into(),
            benchmark: None,
            suite: None,
            hot_rank: hot.then_some(0),
            method: m,
        }
    }

    #[test]
    fn filter_semantics() {
        let tiny = record(5, true);
        let mid = record(100, false);
        let mid_hot = record(100, true);
        let huge = record(1500, true);
        assert!(Filter::All.matches(&tiny) && Filter::All.matches(&huge));
        assert!(!Filter::Filter1.matches(&tiny));
        assert!(Filter::Filter1.matches(&mid));
        assert!(!Filter::Filter1.matches(&huge));
        assert!(!Filter::Filter2.matches(&mid));
        assert!(Filter::Filter2.matches(&mid_hot));
        assert!(!Filter::Filter2.matches(&huge));
    }
}

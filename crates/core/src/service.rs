//! Resident-process evaluation: prepare the population once, sweep it
//! many times.
//!
//! [`Evaluation::run`] re-prepares every method on every call — the right
//! trade for a batch tool, pure waste for a long-lived server answering
//! sweep after sweep over the same population. [`PreparedPopulation`]
//! hoists the configuration-independent work (address resolution, the
//! routing graph, the decoded dispatch tables — everything
//! [`javaflow_fabric::prepare`] produces) out of the sweep and keeps it
//! behind `Arc`s, so each request only pays placement and simulation.
//!
//! The sweep itself runs through the *same* per-record assembly as
//! [`Evaluation::run`] (`harness::eval_prepared`), so the served results
//! are byte-identical to an in-process run by construction; a test pins
//! it. [`PreparedPopulation::evaluate_batched`] additionally splits the
//! record range into bounded batches with a cancellation callback between
//! them — the seam `javaflow-serve` uses to stream progress and honour
//! per-request deadlines without tearing down a half-finished batch.

use std::sync::Arc;

use javaflow_fabric::{
    prepare, ArenaPool, CompiledCache, DataflowGraph, DecodedMethod, FabricConfig, PreparedMethod,
    Resolved,
};

use crate::harness::{cost_schedule, eval_prepared};
use crate::parallel::{par_map, sweep_ordered, SweepStats, WorkerStats};
use crate::{population, EvalConfig, Evaluation, MethodRecord, MethodStatics, Sample};

/// The `Arc`-shared products of one [`prepare`] call, stored without the
/// `&Method` borrow so they can outlive any single sweep. `None` marks a
/// fabric-inexecutable method (jsr/switches) — it still contributes
/// statics, exactly as in [`Evaluation::run`].
#[derive(Debug)]
struct PreparedParts {
    resolved: Arc<Resolved>,
    graph: Arc<DataflowGraph>,
    decoded: Arc<DecodedMethod>,
    /// Block-schedule cache shared across sweeps: a compiled sweep's
    /// first visit to a (config, script) key records the schedule, every
    /// later sweep replays it.
    compiled: Arc<CompiledCache>,
}

/// A population prepared once and swept many times.
#[derive(Debug)]
pub struct PreparedPopulation {
    /// Synthetic-population size this cache was built for. Sweeps must
    /// request the same size — the records are part of the cache key.
    pub synthetic_count: usize,
    records: Vec<MethodRecord>,
    preps: Vec<Option<PreparedParts>>,
}

impl PreparedPopulation {
    /// Builds the population and prepares every record on `threads`
    /// workers.
    #[must_use]
    pub fn prepare(synthetic_count: usize, threads: usize) -> PreparedPopulation {
        let records = population(synthetic_count);
        let preps = par_map(&records, threads, |_, rec| {
            prepare(&rec.method).ok().map(|p| PreparedParts {
                resolved: p.resolved,
                graph: p.graph,
                decoded: p.decoded,
                compiled: p.compiled,
            })
        });
        PreparedPopulation { synthetic_count, records, preps }
    }

    /// The cached population, index-aligned with sample record ids.
    #[must_use]
    pub fn records(&self) -> &[MethodRecord] {
        &self.records
    }

    /// Number of records in the population.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the population is empty (it never is in practice — the
    /// suite methods are always present).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Reconstructs the borrowed [`PreparedMethod`] view for one record
    /// from the cached `Arc`s — the prepare work is shared, only the
    /// struct is rebuilt.
    fn prepared_method(&self, ri: usize) -> Option<PreparedMethod<'_>> {
        self.preps[ri].as_ref().map(|p| PreparedMethod {
            method: &self.records[ri].method,
            resolved: Arc::clone(&p.resolved),
            graph: Arc::clone(&p.graph),
            decoded: Arc::clone(&p.decoded),
            compiled: Arc::clone(&p.compiled),
        })
    }

    /// Sweeps the record range `lo..hi` under `cfg`, returning each
    /// record's `(statics, samples)` in record order plus the scheduling
    /// telemetry. Sample `record` indices are absolute (population-wide),
    /// so batches concatenate into exactly what a full sweep produces.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.synthetic_count` disagrees with the cache or the
    /// range is out of bounds.
    #[must_use]
    pub fn sweep_range(
        &self,
        cfg: &EvalConfig,
        lo: usize,
        hi: usize,
    ) -> (Vec<(MethodStatics, Vec<Sample>)>, SweepStats) {
        assert_eq!(
            cfg.synthetic_count, self.synthetic_count,
            "sweep requested synthetic {} against a cache prepared for {}",
            cfg.synthetic_count, self.synthetic_count
        );
        assert!(lo <= hi && hi <= self.records.len(), "range {lo}..{hi} out of bounds");
        let configs: Vec<FabricConfig> =
            cfg.configs.iter().map(|c| c.clone().with_net(cfg.net)).collect();
        let slice = &self.records[lo..hi];
        let schedule = cost_schedule(slice, None);
        let pool = ArenaPool::global();
        let swept = sweep_ordered(
            slice,
            cfg.threads,
            &schedule,
            || pool.checkout(),
            |arena| pool.checkin(arena),
            |arena, ri, rec| {
                let prepared = self.prepared_method(lo + ri);
                eval_prepared(
                    lo + ri,
                    rec,
                    prepared.as_ref(),
                    &configs,
                    cfg.max_mesh_cycles,
                    cfg.fast_forward,
                    cfg.compiled,
                    arena,
                )
            },
        );
        (swept.results, swept.stats)
    }

    /// Full evaluation from the cache — the resident-process equivalent
    /// of [`Evaluation::run`], producing bit-identical records, statics,
    /// and samples (the scheduling telemetry is the only nondeterministic
    /// field on either path).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.synthetic_count` disagrees with the cache.
    #[must_use]
    pub fn evaluate(&self, cfg: &EvalConfig) -> Evaluation {
        self.evaluate_batched(cfg, self.records.len().max(1), |_, _| true)
            .expect("an always-continue sweep cannot be cancelled")
    }

    /// [`PreparedPopulation::evaluate`] with the record range split into
    /// batches of `batch_records`. After each batch completes,
    /// `on_batch(first_record, batch_results)` observes that batch's
    /// results; returning `false` cancels the sweep between batches (no
    /// in-flight batch is interrupted) and yields `None`. Batching does
    /// not change the results — only how often the caller gets a word in.
    ///
    /// # Panics
    ///
    /// Panics if `batch_records` is 0 or `cfg.synthetic_count` disagrees
    /// with the cache.
    pub fn evaluate_batched<F>(
        &self,
        cfg: &EvalConfig,
        batch_records: usize,
        mut on_batch: F,
    ) -> Option<Evaluation>
    where
        F: FnMut(usize, &[(MethodStatics, Vec<Sample>)]) -> bool,
    {
        assert!(batch_records > 0, "batch_records must be at least 1");
        let n = self.records.len();
        let mut results = Vec::with_capacity(n);
        let mut stats = SweepStats::default();
        let mut lo = 0usize;
        while lo < n {
            let hi = (lo + batch_records).min(n);
            let (batch, batch_stats) = self.sweep_range(cfg, lo, hi);
            merge_stats(&mut stats, &batch_stats);
            let keep_going = on_batch(lo, &batch);
            results.extend(batch);
            if !keep_going {
                return None;
            }
            lo = hi;
        }
        let configs: Vec<FabricConfig> =
            cfg.configs.iter().map(|c| c.clone().with_net(cfg.net)).collect();
        Some(Evaluation::assemble(self.records.clone(), configs, results, stats))
    }
}

/// Folds one batch's scheduling telemetry into the sweep-wide totals:
/// worker slots add field-wise, the used-thread count takes the maximum.
fn merge_stats(into: &mut SweepStats, batch: &SweepStats) {
    into.threads_used = into.threads_used.max(batch.threads_used);
    if into.workers.len() < batch.workers.len() {
        into.workers.resize_with(batch.workers.len(), WorkerStats::default);
    }
    for (acc, w) in into.workers.iter_mut().zip(&batch.workers) {
        acc.records_done += w.records_done;
        acc.busy_secs += w.busy_secs;
        acc.batches += w.batches;
        acc.steals += w.steals;
    }
}

//! The JavaFlow machine: public API and evaluation harness.
//!
//! This crate ties the substrates together into the system the dissertation
//! describes (Figure 12) and evaluates (Chapter 7):
//!
//! * [`Machine`] — deploy and execute Java methods on a DataFlow fabric
//!   configuration with real data, backed by the GPP interpreter and the
//!   shared heap;
//! * [`Evaluation`] — the measurement harness: the whole method population
//!   (suite + synthetic) × six configurations × two branch scripts, with
//!   accessors regenerating every results table (IPC, Figure of Merit,
//!   coverage, span ratios, parallelism, correlations, hot-method rows);
//! * [`Filter`] — the Table 16 population filters;
//! * [`population`] — the evaluated method set.
//!
//! # Quick start
//!
//! ```
//! use javaflow_bytecode::{asm, Value};
//! use javaflow_core::Machine;
//! use javaflow_fabric::FabricConfig;
//!
//! let program = asm::assemble(
//!     ".method fma args=3 returns=true locals=3
//!        iload 0
//!        iload 1
//!        imul
//!        iload 2
//!        iadd
//!        ireturn
//!      .end",
//! )
//! .unwrap();
//! let mut machine = Machine::new(&program, FabricConfig::hetero2());
//! let run = machine
//!     .run_named("fma", &[Value::Int(6), Value::Int(7), Value::Int(0)])
//!     .unwrap();
//! assert_eq!(run.value, Some(Value::Int(42)));
//! println!("{} mesh cycles, IPC {:.2}", run.report.mesh_cycles, run.report.ipc);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod filter;
mod harness;
mod machine;
pub mod parallel;
mod population;
pub mod service;
pub mod tables;

pub use filter::Filter;
pub use harness::{ConfigRow, EvalConfig, Evaluation, MethodStatics, Sample};
pub use machine::{Machine, MachineError, MachineRun};
pub use population::{population, MethodRecord};
pub use service::PreparedPopulation;

//! Chapter 7 table rendering, from an [`Evaluation`].
//!
//! Lives in `core` (rather than the bench crate, which re-exports it) so
//! a resident process — `javaflow-serve` streams rendered tables as the
//! final frame of a sweep response — can render them without pulling in
//! the whole bench harness. Tables 1–8 need interpreter profiles, not an
//! [`Evaluation`], and stay in `javaflow-bench`.

use std::fmt::Write as _;

use javaflow_analysis::{mesh_heatmap, NetSummary, Summary};
use javaflow_fabric::{BranchMode, Layout, Timing};
use javaflow_workloads::SuiteKind;

use crate::{Evaluation, Filter};

fn fmt_summary_row(out: &mut String, label: &str, s: &Summary) {
    let _ = writeln!(
        out,
        "{label:<14} mean {m:>9.3}  std {sd:>9.3}  median {md:>9.3}  max {mx:>9.3}  min {mn:>9.3}",
        m = s.mean,
        sd = s.std_dev,
        md = s.median,
        mx = s.max,
        mn = s.min,
    );
}

/// Tables 9–30: the Chapter 7 results, from an [`Evaluation`].
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn chapter7_tables(eval: &Evaluation, table: u32) -> String {
    let mut out = String::new();
    let summaries = |filter: Filter, names: &[&str]| -> Vec<(&'static str, Summary)> {
        eval.dataflow_summaries(filter).into_iter().filter(|(n, _)| names.contains(n)).collect()
    };
    match table {
        9 => {
            let _ = writeln!(out, "Table 9 — General Data Flow Analysis (Filter 1)");
            for (n, s) in
                summaries(Filter::Filter1, &["Static Inst", "Local Regs", "Stack", "Back Merge"])
            {
                fmt_summary_row(&mut out, n, &s);
            }
            let _ = writeln!(
                out,
                "(paper: mean inst 56, median 29, regs ≈ 4.5, stack ≈ 3.9, back merge 0)"
            );
        }
        10 => {
            let _ = writeln!(out, "Table 10 — DataFlow FanOut and Arc Analysis (Filter 1)");
            for (n, s) in
                summaries(Filter::Filter1, &["FanOut Avg", "FanOut Max", "Arc Avg", "Arc Max"])
            {
                fmt_summary_row(&mut out, n, &s);
            }
            let _ = writeln!(out, "(paper: fanout avg ≈ 1.04, arc avg ≈ 1.9, arc max mean ≈ 6.9)");
        }
        11 => {
            let _ = writeln!(out, "Table 11 — DataFlow Resolution Queue Analysis (Filter 1)");
            for (n, s) in summaries(Filter::Filter1, &["Max Q Up"]) {
                fmt_summary_row(&mut out, n, &s);
            }
            let _ = writeln!(out, "(paper: mean 3.0, median 3, max 11)");
        }
        12 => {
            let _ = writeln!(out, "Table 12 — DataFlow Merge Analysis (Filter 1)");
            for (n, s) in summaries(Filter::Filter1, &["Merges"]) {
                fmt_summary_row(&mut out, n, &s);
            }
            let _ = writeln!(out, "(paper: mean 0.29, median 0, max 9)");
        }
        13 => {
            let _ = writeln!(out, "Table 13 — DataFlow Jump Forward Analysis (Filter 1)");
            for (n, s) in summaries(Filter::Filter1, &["Fwd Jumps", "Fwd Avg Len", "Fwd Max Len"]) {
                fmt_summary_row(&mut out, n, &s);
            }
            let _ = writeln!(out, "(paper: mean count 3.1, mean avg-len 12.0)");
        }
        14 => {
            let _ = writeln!(out, "Table 14 — DataFlow Jump Backward Analysis (Filter 1)");
            for (n, s) in
                summaries(Filter::Filter1, &["Back Jumps", "Back Avg Len", "Back Max Len"])
            {
                fmt_summary_row(&mut out, n, &s);
            }
            let _ = writeln!(out, "(paper: mean count 0.61, median 0)");
        }
        15 => {
            let _ = writeln!(out, "Table 15 — Benchmark Configurations");
            for c in &eval.configs {
                let serial = c.serial_per_mesh.map_or("unlimited".to_string(), |s| s.to_string());
                let layout = match c.layout {
                    Layout::Homogeneous => "homogeneous",
                    Layout::Sparse => "every other node blank",
                    Layout::Heterogeneous => "static-mix heterogeneous",
                };
                let _ = writeln!(
                    out,
                    "{:<10}  width {:>2}  serial/mesh {:<9}  collapsed {:<5}  {layout}",
                    c.name, c.width, serial, c.collapsed
                );
            }
        }
        16 => {
            let _ = writeln!(out, "Table 16 — Filters on Methods");
            for f in Filter::ALL {
                let methods = eval.filtered(*f).len();
                let _ = writeln!(
                    out,
                    "{:<10}  methods {:>5}  executions {:>5}",
                    f.label(),
                    methods,
                    methods * 2
                );
            }
            let _ = writeln!(out, "(paper: 1605 / 915 / 107 methods)");
        }
        17 => {
            let t = Timing::default();
            let _ = writeln!(out, "Table 17 — Execution Cycles per Instruction (+ Figure 25)");
            let _ = writeln!(out, "Move                          : {}", t.move_cycles);
            let _ = writeln!(out, "Floating point arithmetic     : {}", t.float_cycles);
            let _ = writeln!(out, "Integer-Float conversion      : {}", t.convert_cycles);
            let _ = writeln!(out, "Special/Logical/Register/Mem  : {}", t.other_cycles);
            let _ = writeln!(out, "Memory service (mesh cycles)  : {}", t.memory_service);
            let _ = writeln!(out, "GPP service (mesh cycles)     : {}", t.gpp_service);
        }
        18 => {
            let _ = writeln!(out, "Table 18 — Execution Coverage (All Methods)");
            let _ = writeln!(
                out,
                "BP-1: {:.0}%   BP-2: {:.0}%   (paper: 83% / 80%)",
                eval.coverage(BranchMode::Bp1) * 100.0,
                eval.coverage(BranchMode::Bp2) * 100.0
            );
        }
        19 => {
            let _ = writeln!(out, "Table 19 — Ratio of Nodes Spanned to Instructions");
            for (ci, c) in eval.configs.iter().enumerate() {
                if let Some(s) = eval.span_summary(ci, Filter::All) {
                    let _ = writeln!(out, "{:<10} {:>6.2}", c.name, s.mean);
                }
            }
            let _ = writeln!(out, "(paper: 1.0 compact, 2.0 sparse, 3.11 heterogeneous)");
        }
        20 => {
            let _ = writeln!(out, "Table 20 — Heterogeneous Addressing Detail (Filter 1)");
            let hetero = eval
                .configs
                .iter()
                .position(|c| c.layout == Layout::Heterogeneous)
                .unwrap_or(eval.configs.len() - 1);
            if let Some(s) = eval.span_summary(hetero, Filter::Filter1) {
                fmt_summary_row(&mut out, "Inst span", &s);
            }
            let _ = writeln!(out, "(paper: average 3.11, median 3.09, σ 1.81)");
        }
        21 | 22 | 24 | 25 => {
            let (filter, label) = match table {
                21 => (Filter::All, "Table 21 — Raw IPC Data (All Methods)"),
                22 => (Filter::All, "Table 22 — Figure of Merit (All Methods)"),
                24 => (Filter::Filter1, "Table 24 — All Data (Filter 1)"),
                _ => (Filter::Filter2, "Table 25 — All Data (Filter 2)"),
            };
            let _ = writeln!(out, "{label}");
            let rows = eval.config_rows(filter);
            let _ = writeln!(
                out,
                "{:<11} {:>9} {:>9} {:>9} {:>9} {:>9} | {:>7} {:>8}",
                "Config", "IPC-Mean", "IPC-Std", "IPC-Med", "IPC-Max", "IPC-Min", "FM", "FM-Std"
            );
            for r in rows {
                let _ = writeln!(
                    out,
                    "{:<11} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} | {:>7.2} {:>8.2}",
                    r.name,
                    r.ipc.mean,
                    r.ipc.std_dev,
                    r.ipc.median,
                    r.ipc.max,
                    r.ipc.min,
                    r.fom.mean,
                    r.fom.std_dev
                );
            }
            let _ =
                writeln!(out, "(paper FoM, all methods: 1.00 / 0.96 / 0.88 / 0.75 / 0.58 / 0.47)");
        }
        23 => {
            let hetero = eval
                .configs
                .iter()
                .position(|c| c.layout == Layout::Heterogeneous)
                .unwrap_or(eval.configs.len() - 1);
            let _ = writeln!(out, "Table 23 — Correlations with FM Hetero2 (Filter All)");
            for (name, c) in eval.correlations(hetero, Filter::All) {
                let _ = writeln!(out, "{name:<12} {c:>6.2}");
            }
            let _ = writeln!(out, "(paper: −0.25 / −0.21 / −0.27 / −0.10 — all weak)");
        }
        26 => {
            let _ = writeln!(out, "Table 26 — Parallelism (All Methods)");
            for (name, p) in eval.parallelism() {
                let _ = writeln!(out, "{name:<11} {:>5.0}%", p * 100.0);
            }
            let _ = writeln!(out, "(paper: 40/37/33/24/13/12%)");
        }
        27 | 28 => {
            let kind = if table == 27 { SuiteKind::Jvm2008 } else { SuiteKind::Jvm98 };
            let _ =
                writeln!(out, "Table {table} — Figure of Merit on Top Methods ({})", kind.label());
            let _ = writeln!(
                out,
                "{:<52} {:>7} {:>8}  {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}",
                "Benchmark::method",
                "Total I",
                "Hetero N",
                "fm0",
                "fm1",
                "fm2",
                "fm3",
                "fm4",
                "fm5"
            );
            let mut fm_sums = vec![0.0f64; eval.configs.len()];
            let mut count = 0usize;
            for (bench, name, total_i, spanned, fms) in eval.hot_method_rows(kind) {
                let _ = write!(
                    out,
                    "{:<52} {:>7} {:>8} ",
                    format!("{bench}::{name}"),
                    total_i,
                    spanned
                );
                for fm in &fms {
                    let _ = write!(out, " {fm:>5.2}");
                }
                let _ = writeln!(out);
                if fms.iter().all(|f| f.is_finite()) {
                    for (s, f) in fm_sums.iter_mut().zip(&fms) {
                        *s += f;
                    }
                    count += 1;
                }
            }
            if count > 0 {
                let _ = write!(out, "{:<52} {:>7} {:>8} ", "Mean", "", "");
                for s in &fm_sums {
                    let _ = write!(out, " {:>5.2}", s / count as f64);
                }
                let _ = writeln!(out);
            }
            let _ = writeln!(
                out,
                "(paper means fm1..fm5: ≈ 0.72–0.82 / 0.62–0.72 / 0.52–0.58 / 0.38–0.43 / 0.35–0.37)"
            );
        }
        29 => {
            let _ = writeln!(out, "Table 29 — Interconnect Link Statistics (contended model)");
            let any_net = eval.samples.iter().any(|s| s.report.net.is_some());
            if !any_net {
                let _ = writeln!(
                    out,
                    "(no link statistics: this sweep ran the ideal interconnect — \
                     rerun with --net contended)"
                );
            } else {
                let _ = writeln!(
                    out,
                    "{:<11} {:>5} {:>10} {:>10} {:>9} {:>6} {:>6} {:>8} {:>9} {:>8} {:>9}",
                    "Config",
                    "Runs",
                    "Flits",
                    "Hops",
                    "stall/hop",
                    "maxQ",
                    "meanQ",
                    "mem-req",
                    "mem-wait",
                    "gpp-req",
                    "gpp-wait"
                );
                let mut worst: Option<(usize, NetSummary)> = None;
                for (ci, fc) in eval.configs.iter().enumerate() {
                    let s = NetSummary::of(
                        eval.samples
                            .iter()
                            .filter(|s| s.config == ci)
                            .filter_map(|s| s.report.net.as_ref()),
                    );
                    let _ = writeln!(
                        out,
                        "{:<11} {:>5} {:>10} {:>10} {:>9.3} {:>6} {:>6.2} {:>8} {:>9} {:>8} {:>9}",
                        fc.name,
                        s.runs,
                        s.mesh_flits,
                        s.mesh_hops,
                        s.stall_per_hop(),
                        s.max_queue_depth,
                        s.mean_queue_depth,
                        s.memory_ring.0,
                        s.memory_ring.1,
                        s.gpp_ring.0,
                        s.gpp_ring.1,
                    );
                    let worse = worst.as_ref().is_none_or(|(_, w)| {
                        s.mesh_hops > 0 && s.stall_per_hop() > w.stall_per_hop()
                    });
                    if worse {
                        worst = Some((ci, s));
                    }
                }
                if let Some((ci, s)) = worst.filter(|(_, s)| s.mesh_hops > 0) {
                    let width = eval.configs[ci].width;
                    let _ =
                        writeln!(out, "\nhotspots — {} (worst stall/hop):", eval.configs[ci].name);
                    out.push_str(&mesh_heatmap(&s, width));
                    for (x, y, flits, stall) in s.hotspots(5) {
                        let _ = writeln!(out, "  ({x},{y}): {flits} flits, {stall} stall ticks");
                    }
                }
            }
        }
        30 => {
            let _ = writeln!(out, "Table 30 — Instrumentation Summary");
            out.push_str(&eval.metrics().render());
        }
        other => {
            let _ = writeln!(out, "(table {other} is not a Chapter 7 table)");
        }
    }
    out
}

//! The `crypto.signverify` benchmark: GNU-Classpath-style multiword
//! arithmetic (`MPN.submul_1`, `MPN.mul`) and real SHA-1 / SHA-256 block
//! compression (`Sha160.sha`, `Sha256.sha`) — the four hot methods of
//! Table 3. The SHA kernels use the standard constants and are verified
//! against independent Rust implementations in the tests.

use javaflow_bytecode::{ArrayKind, MethodBuilder, MethodId, Opcode, Program, Value};

use crate::util::{for_up, Src};
use crate::{Benchmark, SuiteKind};

const MASK32: i64 = 0xFFFF_FFFF;

/// Adds `MPN.submul_1(dest, x, len, y) -> borrow` — multiword
/// subtract-with-multiply, the workhorse of modular reduction.
pub fn build_submul_1(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("MPN.submul_1", 4, true);
    // args: 0 dest, 1 x, 2 len, 3 y
    // locals: 4 yl(l), 5 carry(l), 6 i, 7 prod(l), 8 diff(l)
    b.iload(3).op(Opcode::I2L).lconst(MASK32).op(Opcode::LAnd).lstore(4);
    b.lconst(0).lstore(5);
    for_up(&mut b, 6, Src::Const(0), Src::Reg(2), 1, |b| {
        // prod = (x[i] & MASK) * yl + carry
        b.aload(1).iload(6).op(Opcode::IALoad);
        b.op(Opcode::I2L).lconst(MASK32).op(Opcode::LAnd);
        b.lload(4).op(Opcode::LMul);
        b.lload(5).op(Opcode::LAdd);
        b.lstore(7);
        // carry = prod >>> 32
        b.lload(7).iconst(32).op(Opcode::LUShr).lstore(5);
        // diff = (dest[i] & MASK) - (prod & MASK)
        b.aload(0).iload(6).op(Opcode::IALoad);
        b.op(Opcode::I2L).lconst(MASK32).op(Opcode::LAnd);
        b.lload(7).lconst(MASK32).op(Opcode::LAnd);
        b.op(Opcode::LSub);
        b.lstore(8);
        // dest[i] = (int) diff
        b.aload(0).iload(6);
        b.lload(8).op(Opcode::L2I);
        b.op(Opcode::IAStore);
        // borrow propagation: carry += (diff >> 63) & 1
        b.lload(5);
        b.lload(8).iconst(63).op(Opcode::LShr).lconst(1).op(Opcode::LAnd);
        b.op(Opcode::LAdd);
        b.lstore(5);
    });
    b.lload(5).op(Opcode::L2I);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("submul_1"))
}

/// Adds `MPN.mul(dest, x, xlen, y, ylen)` — schoolbook multiword multiply.
pub fn build_mpn_mul(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("MPN.mul", 5, false);
    // args: 0 dest, 1 x, 2 xlen, 3 y, 4 ylen
    // locals: 5 j, 6 yw(l), 7 carry(l), 8 i, 9 t(l)
    for_up(&mut b, 5, Src::Const(0), Src::Reg(4), 1, |b| {
        b.aload(3).iload(5).op(Opcode::IALoad);
        b.op(Opcode::I2L).lconst(MASK32).op(Opcode::LAnd);
        b.lstore(6);
        b.lconst(0).lstore(7);
        for_up(b, 8, Src::Const(0), Src::Reg(2), 1, |b| {
            // t = (x[i]&MASK)*yw + (dest[i+j]&MASK) + carry
            b.aload(1).iload(8).op(Opcode::IALoad);
            b.op(Opcode::I2L).lconst(MASK32).op(Opcode::LAnd);
            b.lload(6).op(Opcode::LMul);
            b.aload(0).iload(8).iload(5).op(Opcode::IAdd).op(Opcode::IALoad);
            b.op(Opcode::I2L).lconst(MASK32).op(Opcode::LAnd);
            b.op(Opcode::LAdd);
            b.lload(7).op(Opcode::LAdd);
            b.lstore(9);
            b.aload(0).iload(8).iload(5).op(Opcode::IAdd);
            b.lload(9).op(Opcode::L2I);
            b.op(Opcode::IAStore);
            b.lload(9).iconst(32).op(Opcode::LUShr).lstore(7);
        });
        b.aload(0).iload(2).iload(5).op(Opcode::IAdd);
        b.lload(7).op(Opcode::L2I);
        b.op(Opcode::IAStore);
    });
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("MPN.mul"))
}

/// Emits `rotl(value-on-stack, n)` for ints.
fn rotl(b: &mut MethodBuilder, tmp: u16, n: i32) {
    b.istore(tmp);
    b.iload(tmp).iconst(n).op(Opcode::IShl);
    b.iload(tmp).iconst(32 - n).op(Opcode::IUShr);
    b.op(Opcode::IOr);
}

/// Adds `Sha160.sha(state, w)` — one real SHA-1 block compression over the
/// 80-entry schedule array `w` (first 16 filled by the caller).
pub fn build_sha160(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("Sha160.sha", 2, false);
    // args: 0 state (5 ints), 1 w (80 ints)
    // locals: 2 a, 3 bb, 4 c, 5 d, 6 e, 7 t, 8 f, 9 k, 10 tmp
    // schedule expansion
    for_up(&mut b, 7, Src::Const(16), Src::Const(80), 1, |b| {
        b.aload(1).iload(7);
        b.aload(1).iload(7).iconst(3).op(Opcode::ISub).op(Opcode::IALoad);
        b.aload(1).iload(7).iconst(8).op(Opcode::ISub).op(Opcode::IALoad);
        b.op(Opcode::IXor);
        b.aload(1).iload(7).iconst(14).op(Opcode::ISub).op(Opcode::IALoad);
        b.op(Opcode::IXor);
        b.aload(1).iload(7).iconst(16).op(Opcode::ISub).op(Opcode::IALoad);
        b.op(Opcode::IXor);
        rotl(b, 10, 1);
        b.op(Opcode::IAStore);
    });
    // load working registers
    for (reg, slot) in [(2u16, 0i32), (3, 1), (4, 2), (5, 3), (6, 4)] {
        b.aload(0).iconst(slot).op(Opcode::IALoad).istore(reg);
    }
    // 80 rounds, phase selected by round index
    for_up(&mut b, 7, Src::Const(0), Src::Const(80), 1, |b| {
        let phase2 = b.new_label();
        let phase3 = b.new_label();
        let phase4 = b.new_label();
        let rounds_done = b.new_label();
        b.iload(7).iconst(20);
        b.branch(Opcode::IfICmpGe, phase2);
        // f = (b & c) | (~b & d); k = 0x5a827999
        b.iload(3).iload(4).op(Opcode::IAnd);
        b.iload(3).iconst(-1).op(Opcode::IXor).iload(5).op(Opcode::IAnd);
        b.op(Opcode::IOr);
        b.istore(8);
        b.iconst(0x5A82_7999).istore(9);
        b.branch(Opcode::Goto, rounds_done);
        b.bind(phase2);
        b.iload(7).iconst(40);
        b.branch(Opcode::IfICmpGe, phase3);
        b.iload(3).iload(4).op(Opcode::IXor).iload(5).op(Opcode::IXor).istore(8);
        b.iconst(0x6ED9_EBA1).istore(9);
        b.branch(Opcode::Goto, rounds_done);
        b.bind(phase3);
        b.iload(7).iconst(60);
        b.branch(Opcode::IfICmpGe, phase4);
        b.iload(3).iload(4).op(Opcode::IAnd);
        b.iload(3).iload(5).op(Opcode::IAnd);
        b.op(Opcode::IOr);
        b.iload(4).iload(5).op(Opcode::IAnd);
        b.op(Opcode::IOr);
        b.istore(8);
        b.iconst(0x8F1B_BCDC_u32 as i32).istore(9);
        b.branch(Opcode::Goto, rounds_done);
        b.bind(phase4);
        b.iload(3).iload(4).op(Opcode::IXor).iload(5).op(Opcode::IXor).istore(8);
        b.iconst(0xCA62_C1D6_u32 as i32).istore(9);
        b.bind(rounds_done);
        // t = rotl(a,5) + f + e + k + w[i]
        b.iload(2);
        rotl(b, 10, 5);
        b.iload(8).op(Opcode::IAdd);
        b.iload(6).op(Opcode::IAdd);
        b.iload(9).op(Opcode::IAdd);
        b.aload(1).iload(7).op(Opcode::IALoad).op(Opcode::IAdd);
        b.istore(10);
        // e=d; d=c; c=rotl(b,30); b=a; a=t
        b.iload(5).istore(6);
        b.iload(4).istore(5);
        b.iload(3);
        rotl(b, 11, 30);
        b.istore(4);
        b.iload(2).istore(3);
        b.iload(10).istore(2);
    });
    // add back
    for (reg, slot) in [(2u16, 0i32), (3, 1), (4, 2), (5, 3), (6, 4)] {
        b.aload(0).iconst(slot);
        b.aload(0).iconst(slot).op(Opcode::IALoad);
        b.iload(reg).op(Opcode::IAdd);
        b.op(Opcode::IAStore);
    }
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("Sha160.sha"))
}

/// Adds `Sha256.sha(state, w, k)` — one real SHA-256 block compression;
/// `k` is the 64-entry round-constant table (filled by the driver).
pub fn build_sha256(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("Sha256.sha", 3, false);
    // args: 0 state (8 ints), 1 w (64 ints), 2 k (64 ints)
    // locals: 3 a..10 h, 11 i, 12 t1, 13 t2, 14 tmp, 15 s
    // schedule expansion: w[i] = w[i-16] + s0(w[i-15]) + w[i-7] + s1(w[i-2])
    let rotr = |b: &mut MethodBuilder, tmp: u16, n: i32| {
        b.istore(tmp);
        b.iload(tmp).iconst(n).op(Opcode::IUShr);
        b.iload(tmp).iconst(32 - n).op(Opcode::IShl);
        b.op(Opcode::IOr);
    };
    for_up(&mut b, 11, Src::Const(16), Src::Const(64), 1, |b| {
        b.aload(1).iload(11);
        // s0 = rotr(x,7) ^ rotr(x,18) ^ (x >>> 3), x = w[i-15]
        b.aload(1).iload(11).iconst(15).op(Opcode::ISub).op(Opcode::IALoad).istore(15);
        b.iload(15);
        rotr(b, 14, 7);
        b.iload(15);
        rotr(b, 14, 18);
        b.op(Opcode::IXor);
        b.iload(15).iconst(3).op(Opcode::IUShr);
        b.op(Opcode::IXor);
        // + w[i-16]
        b.aload(1).iload(11).iconst(16).op(Opcode::ISub).op(Opcode::IALoad);
        b.op(Opcode::IAdd);
        // + w[i-7]
        b.aload(1).iload(11).iconst(7).op(Opcode::ISub).op(Opcode::IALoad);
        b.op(Opcode::IAdd);
        // + s1 = rotr(x,17) ^ rotr(x,19) ^ (x >>> 10), x = w[i-2]
        b.aload(1).iload(11).iconst(2).op(Opcode::ISub).op(Opcode::IALoad).istore(15);
        b.iload(15);
        rotr(b, 14, 17);
        b.iload(15);
        rotr(b, 14, 19);
        b.op(Opcode::IXor);
        b.iload(15).iconst(10).op(Opcode::IUShr);
        b.op(Opcode::IXor);
        b.op(Opcode::IAdd);
        b.op(Opcode::IAStore);
    });
    for (reg, slot) in (3u16..=10).zip(0i32..8) {
        b.aload(0).iconst(slot).op(Opcode::IALoad).istore(reg);
    }
    for_up(&mut b, 11, Src::Const(0), Src::Const(64), 1, |b| {
        // t1 = h + S1(e) + ch(e,f,g) + k[i] + w[i]
        b.iload(10);
        b.iload(7);
        rotr(b, 14, 6);
        b.iload(7);
        rotr(b, 14, 11);
        b.op(Opcode::IXor);
        b.iload(7);
        rotr(b, 14, 25);
        b.op(Opcode::IXor);
        b.op(Opcode::IAdd);
        b.iload(7).iload(8).op(Opcode::IAnd);
        b.iload(7).iconst(-1).op(Opcode::IXor).iload(9).op(Opcode::IAnd);
        b.op(Opcode::IXor);
        b.op(Opcode::IAdd);
        b.aload(2).iload(11).op(Opcode::IALoad).op(Opcode::IAdd);
        b.aload(1).iload(11).op(Opcode::IALoad).op(Opcode::IAdd);
        b.istore(12);
        // t2 = S0(a) + maj(a,b,c)
        b.iload(3);
        rotr(b, 14, 2);
        b.iload(3);
        rotr(b, 14, 13);
        b.op(Opcode::IXor);
        b.iload(3);
        rotr(b, 14, 22);
        b.op(Opcode::IXor);
        b.iload(3).iload(4).op(Opcode::IAnd);
        b.iload(3).iload(5).op(Opcode::IAnd);
        b.op(Opcode::IXor);
        b.iload(4).iload(5).op(Opcode::IAnd);
        b.op(Opcode::IXor);
        b.op(Opcode::IAdd);
        b.istore(13);
        // rotate registers
        b.iload(9).istore(10);
        b.iload(8).istore(9);
        b.iload(7).istore(8);
        b.iload(6).iload(12).op(Opcode::IAdd).istore(7);
        b.iload(5).istore(6);
        b.iload(4).istore(5);
        b.iload(3).istore(4);
        b.iload(12).iload(13).op(Opcode::IAdd).istore(3);
    });
    for (reg, slot) in (3u16..=10).zip(0i32..8) {
        b.aload(0).iconst(slot);
        b.aload(0).iconst(slot).op(Opcode::IALoad);
        b.iload(reg).op(Opcode::IAdd);
        b.op(Opcode::IAStore);
    }
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("Sha256.sha"))
}

/// SHA-256 round constants.
pub const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Builds the `crypto.signverify` benchmark.
#[must_use]
pub fn crypto_benchmark(blocks: i32) -> Benchmark {
    let mut p = Program::new();
    let submul = build_submul_1(&mut p);
    let mul = build_mpn_mul(&mut p);
    let sha160 = build_sha160(&mut p);
    let sha256 = build_sha256(&mut p);

    let mut b = MethodBuilder::new("crypto.driver", 1, true);
    // locals: 0 blocks, 1 st1, 2 w1, 3 st2, 4 w2, 5 k, 6 i, 7 dest, 8 x,
    //         9 y, 10 acc
    // SHA-1 state
    b.iconst(5);
    b.newarray(ArrayKind::Int);
    b.astore(1);
    for (i, v) in
        [0x6745_2301u32, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0].iter().enumerate()
    {
        b.aload(1).iconst(i as i32).iconst(*v as i32).op(Opcode::IAStore);
    }
    b.iconst(80);
    b.newarray(ArrayKind::Int);
    b.astore(2);
    // SHA-256 state
    b.iconst(8);
    b.newarray(ArrayKind::Int);
    b.astore(3);
    for (i, v) in [
        0x6a09_e667u32,
        0xbb67_ae85,
        0x3c6e_f372,
        0xa54f_f53a,
        0x510e_527f,
        0x9b05_688c,
        0x1f83_d9ab,
        0x5be0_cd19,
    ]
    .iter()
    .enumerate()
    {
        b.aload(3).iconst(i as i32).iconst(*v as i32).op(Opcode::IAStore);
    }
    b.iconst(64);
    b.newarray(ArrayKind::Int);
    b.astore(4);
    b.iconst(64);
    b.newarray(ArrayKind::Int);
    b.astore(5);
    for (i, v) in SHA256_K.iter().enumerate() {
        b.aload(5).iconst(i as i32).iconst(*v as i32).op(Opcode::IAStore);
    }
    // bignum buffers
    b.iconst(24);
    b.newarray(ArrayKind::Int);
    b.astore(7);
    b.iconst(8);
    b.newarray(ArrayKind::Int);
    b.astore(8);
    b.iconst(8);
    b.newarray(ArrayKind::Int);
    b.astore(9);
    for_up(&mut b, 6, Src::Const(0), Src::Const(8), 1, |b| {
        b.aload(8).iload(6);
        b.iload(6).iconst(0x1234_5671).op(Opcode::IMul).iconst(7).op(Opcode::IAdd);
        b.op(Opcode::IAStore);
        b.aload(9).iload(6);
        b.iload(6).iconst(0x0BAD_CAFE).op(Opcode::IXor);
        b.op(Opcode::IAStore);
        b.aload(7).iload(6).iconst(-1).op(Opcode::IAStore);
    });
    // main loop: refill message words from block index, hash, bignum ops
    for_up(&mut b, 6, Src::Const(0), Src::Reg(0), 1, |b| {
        // w1[j] = w2[j%64... fill first 16 words of both schedules
        for_up(b, 10, Src::Const(0), Src::Const(16), 1, |b| {
            b.aload(2).iload(10);
            b.iload(10).iload(6).op(Opcode::IAdd).iconst(0x9E37_79B9_u32 as i32).op(Opcode::IMul);
            b.op(Opcode::IAStore);
            b.aload(4).iload(10);
            b.iload(10).iload(6).op(Opcode::IXor).iconst(0x85EB_CA6B_u32 as i32).op(Opcode::IMul);
            b.op(Opcode::IAStore);
        });
        b.aload(1).aload(2);
        b.invoke(Opcode::InvokeStatic, sha160, 2, false);
        b.aload(3).aload(4).aload(5);
        b.invoke(Opcode::InvokeStatic, sha256, 3, false);
        b.aload(7).aload(8).iconst(8).aload(9).iconst(8);
        b.invoke(Opcode::InvokeStatic, mul, 5, false);
        b.aload(7).aload(8).iconst(8).iconst(0x7FFF_FFFF);
        b.invoke(Opcode::InvokeStatic, submul, 4, true);
        b.op(Opcode::Pop);
    });
    // fold a checksum
    b.aload(1).iconst(0).op(Opcode::IALoad);
    b.aload(3).iconst(0).op(Opcode::IALoad);
    b.op(Opcode::IXor);
    b.aload(7).iconst(3).op(Opcode::IALoad);
    b.op(Opcode::IXor);
    b.op(Opcode::IReturn);
    let driver = p.add_method(b.finish().expect("crypto.driver"));

    p.validate().expect("crypto benchmark valid");
    Benchmark {
        name: "crypto.signverify",
        suite: SuiteKind::Jvm2008,
        program: p,
        driver,
        driver_args: vec![Value::Int(blocks)],
        hot: vec![submul, sha160, sha256, mul],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_interp::Interp;

    fn int_array(jvm: &mut Interp<'_>, vals: &[u32]) -> Value {
        let h = jvm.state.heap.alloc_array(ArrayKind::Int, vals.len() as i32).unwrap();
        for (i, v) in vals.iter().enumerate() {
            jvm.state.heap.array_set(Some(h), i as i32, Value::Int(*v as i32)).unwrap();
        }
        Value::Ref(Some(h))
    }

    fn read_ints(jvm: &Interp<'_>, arr: Value, n: usize) -> Vec<u32> {
        let h = arr.as_ref_handle().unwrap();
        (0..n)
            .map(|i| jvm.state.heap.array_get(h, i as i32).unwrap().as_int().unwrap() as u32)
            .collect()
    }

    #[test]
    fn sha1_matches_reference() {
        let mut p = Program::new();
        let sha = build_sha160(&mut p);
        p.validate().unwrap();
        let mut jvm = Interp::new(&p);
        let mut w = vec![0u32; 80];
        for (i, wv) in w.iter_mut().enumerate().take(16) {
            *wv = (i as u32).wrapping_mul(0x9E37_79B9) ^ 0x1357_9BDF;
        }
        let state =
            int_array(&mut jvm, &[0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0]);
        let warr = int_array(&mut jvm, &w);
        jvm.run(sha, &[state, warr]).unwrap();
        let got = read_ints(&jvm, state, 5);

        // Independent Rust SHA-1 compression.
        let mut we = w.clone();
        for i in 16..80 {
            we[i] = (we[i - 3] ^ we[i - 8] ^ we[i - 14] ^ we[i - 16]).rotate_left(1);
        }
        let (mut a, mut bb, mut c, mut d, mut e) =
            (0x6745_2301u32, 0xEFCD_AB89u32, 0x98BA_DCFEu32, 0x1032_5476u32, 0xC3D2_E1F0u32);
        for (i, wi) in we.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((bb & c) | (!bb & d), 0x5A82_7999u32),
                1 => (bb ^ c ^ d, 0x6ED9_EBA1),
                2 => ((bb & c) | (bb & d) | (c & d), 0x8F1B_BCDC),
                _ => (bb ^ c ^ d, 0xCA62_C1D6),
            };
            let t =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(*wi);
            e = d;
            d = c;
            c = bb.rotate_left(30);
            bb = a;
            a = t;
        }
        let expect = [
            0x6745_2301u32.wrapping_add(a),
            0xEFCD_AB89u32.wrapping_add(bb),
            0x98BA_DCFEu32.wrapping_add(c),
            0x1032_5476u32.wrapping_add(d),
            0xC3D2_E1F0u32.wrapping_add(e),
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn sha256_matches_reference() {
        let mut p = Program::new();
        let sha = build_sha256(&mut p);
        p.validate().unwrap();
        let mut jvm = Interp::new(&p);
        let mut w = vec![0u32; 64];
        for (i, wv) in w.iter_mut().enumerate().take(16) {
            *wv = (i as u32).wrapping_mul(0x85EB_CA6B) ^ 0x0F0F_1234;
        }
        let init = [
            0x6a09_e667u32,
            0xbb67_ae85,
            0x3c6e_f372,
            0xa54f_f53a,
            0x510e_527f,
            0x9b05_688c,
            0x1f83_d9ab,
            0x5be0_cd19,
        ];
        let state = int_array(&mut jvm, &init);
        let warr = int_array(&mut jvm, &w);
        let karr = int_array(&mut jvm, &SHA256_K);
        jvm.run(sha, &[state, warr, karr]).unwrap();
        let got = read_ints(&jvm, state, 8);

        // Independent Rust SHA-256 compression.
        let mut we = w.clone();
        for i in 16..64 {
            let s0 = we[i - 15].rotate_right(7) ^ we[i - 15].rotate_right(18) ^ (we[i - 15] >> 3);
            let s1 = we[i - 2].rotate_right(17) ^ we[i - 2].rotate_right(19) ^ (we[i - 2] >> 10);
            we[i] = we[i - 16].wrapping_add(s0).wrapping_add(we[i - 7]).wrapping_add(s1);
        }
        let mut h = init;
        let (mut a, mut bb, mut c, mut d, mut e, mut f, mut g, mut hh) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6], h[7]);
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 =
                hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(SHA256_K[i]).wrapping_add(we[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & bb) ^ (a & c) ^ (bb & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = bb;
            bb = a;
            a = t1.wrapping_add(t2);
        }
        for (hs, v) in h.iter_mut().zip([a, bb, c, d, e, f, g, hh]) {
            *hs = hs.wrapping_add(v);
        }
        assert_eq!(got, h);
    }

    #[test]
    fn mpn_mul_matches_u128_reference() {
        let mut p = Program::new();
        let mul = build_mpn_mul(&mut p);
        p.validate().unwrap();
        let mut jvm = Interp::new(&p);
        // x = 0xDEADBEEF_00112233, y = 0xCAFEBABE (little-endian words)
        let x_words = [0x0011_2233u32, 0xDEAD_BEEF];
        let y_words = [0xCAFE_BABEu32];
        let dest = int_array(&mut jvm, &[0, 0, 0]);
        let x = int_array(&mut jvm, &x_words);
        let y = int_array(&mut jvm, &y_words);
        jvm.run(mul, &[dest, x, Value::Int(2), y, Value::Int(1)]).unwrap();
        let got = read_ints(&jvm, dest, 3);
        let product = 0xDEAD_BEEF_0011_2233u128 * 0xCAFE_BABEu128;
        let expect = [
            (product & 0xFFFF_FFFF) as u32,
            ((product >> 32) & 0xFFFF_FFFF) as u32,
            ((product >> 64) & 0xFFFF_FFFF) as u32,
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn submul_matches_reference() {
        let mut p = Program::new();
        let submul = build_submul_1(&mut p);
        p.validate().unwrap();
        let mut jvm = Interp::new(&p);
        let d_words = [0x8000_0001u32, 0x0000_0002];
        let x_words = [0x0000_0003u32, 0x0000_0004];
        let y = 0x0001_0001u32;
        let dest = int_array(&mut jvm, &d_words);
        let x = int_array(&mut jvm, &x_words);
        jvm.run(submul, &[dest, x, Value::Int(2), Value::Int(y as i32)]).unwrap();
        let got = read_ints(&jvm, dest, 2);
        // Reference: dest -= x*y word-wise with borrow, as the kernel does.
        let mut carry: u64 = 0;
        let mut expect = [0u32; 2];
        for i in 0..2 {
            let prod = u64::from(x_words[i]) * u64::from(y) + carry;
            carry = prod >> 32;
            let diff = i64::from(d_words[i]) - i64::from((prod & 0xFFFF_FFFF) as u32);
            expect[i] = diff as u32;
            if diff < 0 {
                carry += 1;
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn crypto_driver_is_deterministic() {
        let bench = crypto_benchmark(4);
        let a = bench.run().unwrap();
        let b = bench.run().unwrap();
        assert_eq!(a, b);
        assert!(a.unwrap().as_int().is_some());
    }
}

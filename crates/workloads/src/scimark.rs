//! SciMark-style kernels: FFT, LU, SOR, sparse matmult, Monte Carlo, and
//! the `Random.nextDouble` generator that is the dissertation's Appendix C
//! case study (Figures 27–31).
//!
//! Each kernel is a faithful re-implementation of the SciMark 2.0 hot
//! method against the ByteCode builder, preserving the loop nests, the
//! arithmetic mix, and the register/stack discipline javac produces. The
//! drivers allocate and initialize real heap state so every benchmark runs
//! end-to-end on the interpreter and can be co-simulated on the fabric.

use javaflow_bytecode::{ArrayKind, ClassDef, MethodBuilder, MethodId, Opcode, Program, Value};

use crate::util::{countdown, dabs, for_up, Src};
use crate::{Benchmark, SuiteKind};

const M1: i32 = 0x3FFF_FFFF;
const DM1: f64 = 1.0 / (M1 as f64);
const PI: f64 = std::f64::consts::PI;

/// Adds the `Random` class and its methods; returns
/// `(class id, Random.make, Random.nextDouble)`.
pub fn build_random(p: &mut Program) -> (u16, MethodId, MethodId) {
    // Fields: 0 = m (int[17]), 1 = i, 2 = j, 3 = haveRange, 4 = left,
    // 5 = width.
    let class =
        p.add_class(ClassDef { name: "Random".into(), instance_fields: 6, static_fields: 0 });

    // Reserve the ids before building so the methods can self-reference.
    let make_id = MethodId(p.num_methods() as u32);
    let next_id = MethodId(p.num_methods() as u32 + 1);

    // Random.make(seed) — allocates and seeds the generator.
    let mut b = MethodBuilder::new("Random.make", 1, true);
    {
        // locals: 0 seed, 1 r, 2 m, 3 k
        b.emit(Opcode::New, javaflow_bytecode::Operand::ClassId(class));
        b.astore(1);
        b.iconst(17);
        b.newarray(ArrayKind::Int);
        b.astore(2);
        b.aload(1);
        b.aload(2);
        b.field(Opcode::PutField, class, 0);
        for_up(&mut b, 3, Src::Const(0), Src::Const(17), 1, |b| {
            // seed = seed * 1103515245 + 12345
            b.iload(0).iconst(1_103_515_245).op(Opcode::IMul).iconst(12_345).op(Opcode::IAdd);
            b.istore(0);
            // m[k] = (seed >>> 2) & M1
            b.aload(2).iload(3);
            b.iload(0).iconst(2).op(Opcode::IUShr).iconst(M1).op(Opcode::IAnd);
            b.op(Opcode::IAStore);
        });
        b.aload(1).iconst(4);
        b.field(Opcode::PutField, class, 1);
        b.aload(1).iconst(16);
        b.field(Opcode::PutField, class, 2);
        b.aload(1).iconst(0);
        b.field(Opcode::PutField, class, 3);
        b.aload(1).dconst(0.0);
        b.field(Opcode::PutField, class, 4);
        b.aload(1).dconst(1.0);
        b.field(Opcode::PutField, class, 5);
        b.aload(1);
        b.op(Opcode::AReturn);
    }
    let made = p.add_method(b.finish().expect("Random.make"));
    assert_eq!(made, make_id);

    // Random.nextDouble(this) — the Appendix C case-study method.
    let mut b = MethodBuilder::new("Random.nextDouble", 1, true);
    {
        // locals: 0 this, 1 k
        // k = m[i] - m[j]
        b.aload(0);
        b.field(Opcode::GetField, class, 0);
        b.aload(0);
        b.field(Opcode::GetField, class, 1);
        b.op(Opcode::IALoad);
        b.aload(0);
        b.field(Opcode::GetField, class, 0);
        b.aload(0);
        b.field(Opcode::GetField, class, 2);
        b.op(Opcode::IALoad);
        b.op(Opcode::ISub);
        b.istore(1);
        // if (k < 0) k += m1
        let nonneg = b.new_label();
        b.iload(1);
        b.branch(Opcode::IfGe, nonneg);
        b.iload(1).iconst(M1).op(Opcode::IAdd).istore(1);
        b.bind(nonneg);
        // m[j] = k
        b.aload(0);
        b.field(Opcode::GetField, class, 0);
        b.aload(0);
        b.field(Opcode::GetField, class, 2);
        b.iload(1);
        b.op(Opcode::IAStore);
        // if (i == 0) i = 16 else i--
        let else_i = b.new_label();
        let end_i = b.new_label();
        b.aload(0);
        b.field(Opcode::GetField, class, 1);
        b.branch(Opcode::IfNe, else_i);
        b.aload(0).iconst(16);
        b.field(Opcode::PutField, class, 1);
        b.branch(Opcode::Goto, end_i);
        b.bind(else_i);
        b.aload(0);
        b.aload(0);
        b.field(Opcode::GetField, class, 1);
        b.iconst(1).op(Opcode::ISub);
        b.field(Opcode::PutField, class, 1);
        b.bind(end_i);
        // if (j == 0) j = 16 else j--
        let else_j = b.new_label();
        let end_j = b.new_label();
        b.aload(0);
        b.field(Opcode::GetField, class, 2);
        b.branch(Opcode::IfNe, else_j);
        b.aload(0).iconst(16);
        b.field(Opcode::PutField, class, 2);
        b.branch(Opcode::Goto, end_j);
        b.bind(else_j);
        b.aload(0);
        b.aload(0);
        b.field(Opcode::GetField, class, 2);
        b.iconst(1).op(Opcode::ISub);
        b.field(Opcode::PutField, class, 2);
        b.bind(end_j);
        // if (haveRange) return left + dm1*k*width
        let simple = b.new_label();
        b.aload(0);
        b.field(Opcode::GetField, class, 3);
        b.branch(Opcode::IfEq, simple);
        b.aload(0);
        b.field(Opcode::GetField, class, 4);
        b.dconst(DM1);
        b.iload(1).op(Opcode::I2D).op(Opcode::DMul);
        b.aload(0);
        b.field(Opcode::GetField, class, 5);
        b.op(Opcode::DMul);
        b.op(Opcode::DAdd);
        b.op(Opcode::DReturn);
        b.bind(simple);
        // return dm1 * k
        b.dconst(DM1);
        b.iload(1).op(Opcode::I2D).op(Opcode::DMul);
        b.op(Opcode::DReturn);
    }
    let built = p.add_method(b.finish().expect("Random.nextDouble"));
    assert_eq!(built, next_id);

    (class, make_id, next_id)
}

/// Adds `MathLib.sin` (range-reduced Taylor series — the Math.sin calls the
/// real SciMark FFT makes); returns its id.
pub fn build_sin(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("MathLib.sin", 1, true);
    // locals: 0 x, 1 term, 2 sum, 3 k, 4 x2
    // x = x % (2*pi); fold into [-pi, pi]
    b.dload(0).dconst(2.0 * PI).op(Opcode::DRem).dstore(0);
    let no_high = b.new_label();
    b.dload(0).dconst(PI).op(Opcode::DCmpL);
    b.branch(Opcode::IfLe, no_high);
    b.dload(0).dconst(2.0 * PI).op(Opcode::DSub).dstore(0);
    b.bind(no_high);
    let no_low = b.new_label();
    b.dload(0).dconst(-PI).op(Opcode::DCmpG);
    b.branch(Opcode::IfGe, no_low);
    b.dload(0).dconst(2.0 * PI).op(Opcode::DAdd).dstore(0);
    b.bind(no_low);
    // x2 = x*x; term = x; sum = x
    b.dload(0).dload(0).op(Opcode::DMul).dstore(4);
    b.dload(0).dstore(1);
    b.dload(0).dstore(2);
    for_up(&mut b, 3, Src::Const(1), Src::Const(11), 1, |b| {
        // term = -term * x2 / ((2k) * (2k+1))
        b.dload(1).op(Opcode::DNeg).dload(4).op(Opcode::DMul);
        b.iload(3).iconst(2).op(Opcode::IMul);
        b.iload(3).iconst(2).op(Opcode::IMul).iconst(1).op(Opcode::IAdd);
        b.op(Opcode::IMul).op(Opcode::I2D);
        b.op(Opcode::DDiv);
        b.dstore(1);
        // sum += term
        b.dload(2).dload(1).op(Opcode::DAdd).dstore(2);
    });
    b.dload(2);
    b.op(Opcode::DReturn);

    p.add_method(b.finish().expect("MathLib.sin"))
}

/// Helper methods used by several drivers: `kernel.RandomVector`,
/// `kernel.CopyVector`, `kernel.AllocMatrix`, `kernel.RandomizeMatrix`,
/// `kernel.matvec`. Returns their ids in that order.
pub fn build_kernel_helpers(
    p: &mut Program,
    arr_class: u16,
    next_double: MethodId,
) -> [MethodId; 5] {
    // kernel.RandomVector(n, r) -> double[]
    let mut b = MethodBuilder::new("kernel.RandomVector", 2, true);
    // locals: 0 n, 1 r, 2 a, 3 i
    b.iload(0);
    b.newarray(ArrayKind::Double);
    b.astore(2);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(2).iload(3);
        b.aload(1);
        b.invoke(Opcode::InvokeVirtual, next_double, 1, true);
        b.op(Opcode::DAStore);
    });
    b.aload(2);
    b.op(Opcode::AReturn);
    let random_vector = p.add_method(b.finish().expect("RandomVector"));

    // kernel.CopyVector(src) -> double[]
    let mut b = MethodBuilder::new("kernel.CopyVector", 1, true);
    // locals: 0 src, 1 dst, 2 i, 3 n
    b.aload(0).op(Opcode::ArrayLength).istore(3);
    b.iload(3);
    b.newarray(ArrayKind::Double);
    b.astore(1);
    for_up(&mut b, 2, Src::Const(0), Src::Reg(3), 1, |b| {
        b.aload(1).iload(2);
        b.aload(0).iload(2).op(Opcode::DALoad);
        b.op(Opcode::DAStore);
    });
    b.aload(1);
    b.op(Opcode::AReturn);
    let copy_vector = p.add_method(b.finish().expect("CopyVector"));

    // kernel.AllocMatrix(m, n) -> double[][]
    let mut b = MethodBuilder::new("kernel.AllocMatrix", 2, true);
    // locals: 0 m, 1 n, 2 a, 3 i
    b.iload(0);
    b.emit(Opcode::ANewArray, javaflow_bytecode::Operand::ClassId(arr_class));
    b.astore(2);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(2).iload(3);
        b.iload(1);
        b.newarray(ArrayKind::Double);
        b.op(Opcode::AAStore);
    });
    b.aload(2);
    b.op(Opcode::AReturn);
    let alloc_matrix = p.add_method(b.finish().expect("AllocMatrix"));

    // kernel.RandomizeMatrix(a, r) -> void
    let mut b = MethodBuilder::new("kernel.RandomizeMatrix", 2, false);
    // locals: 0 a, 1 r, 2 i, 3 j, 4 row
    let rows = Src::Reg(5);
    b.aload(0).op(Opcode::ArrayLength).istore(5);
    for_up(&mut b, 2, Src::Const(0), rows, 1, |b| {
        b.aload(0).iload(2).op(Opcode::AALoad).astore(4);
        b.aload(4).op(Opcode::ArrayLength).istore(6);
        for_up(b, 3, Src::Const(0), Src::Reg(6), 1, |b| {
            b.aload(4).iload(3);
            b.aload(1);
            b.invoke(Opcode::InvokeVirtual, next_double, 1, true);
            b.op(Opcode::DAStore);
        });
    });
    b.op(Opcode::ReturnVoid);
    let randomize_matrix = p.add_method(b.finish().expect("RandomizeMatrix"));

    // kernel.matvec(a, x, y) -> void
    let mut b = MethodBuilder::new("kernel.matvec", 3, false);
    // locals: 0 a, 1 x, 2 y, 3 i, 4 j, 5 sum(d), 6 row, 7 n
    b.aload(0).op(Opcode::ArrayLength).istore(7);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(7), 1, |b| {
        b.dconst(0.0).dstore(5);
        b.aload(0).iload(3).op(Opcode::AALoad).astore(6);
        b.aload(6).op(Opcode::ArrayLength).istore(8);
        for_up(b, 4, Src::Const(0), Src::Reg(8), 1, |b| {
            b.dload(5);
            b.aload(6).iload(4).op(Opcode::DALoad);
            b.aload(1).iload(4).op(Opcode::DALoad);
            b.op(Opcode::DMul).op(Opcode::DAdd).dstore(5);
        });
        b.aload(2).iload(3).dload(5).op(Opcode::DAStore);
    });
    b.op(Opcode::ReturnVoid);
    let matvec = p.add_method(b.finish().expect("matvec"));

    [random_vector, copy_vector, alloc_matrix, randomize_matrix, matvec]
}

/// Adds `FFT.bitreverse`, `FFT.transform_internal`, `FFT.transform`,
/// `FFT.inverse`; returns `(bitreverse, transform_internal, transform,
/// inverse)`.
#[allow(clippy::similar_names)]
pub fn build_fft(p: &mut Program, sin: MethodId) -> (MethodId, MethodId, MethodId, MethodId) {
    // FFT.bitreverse(data) -> void
    let mut b = MethodBuilder::new("FFT.bitreverse", 1, false);
    // locals: 0 data, 1 n, 2 i, 3 j, 4 k, 5 ii, 6 jj, 7 tmp(d)
    b.aload(0).op(Opcode::ArrayLength).iconst(2).op(Opcode::IDiv).istore(1);
    b.iconst(0).istore(3);
    let nm1 = 8u16; // n - 1
    b.iload(1).iconst(1).op(Opcode::ISub).istore(nm1);
    for_up(&mut b, 2, Src::Const(0), Src::Reg(nm1), 1, |b| {
        // ii = 2i; jj = 2j; k = n/2
        b.iload(2).iconst(2).op(Opcode::IMul).istore(5);
        b.iload(3).iconst(2).op(Opcode::IMul).istore(6);
        b.iload(1).iconst(2).op(Opcode::IDiv).istore(4);
        // if (i < j) swap the complex pair
        let noswap = b.new_label();
        b.iload(2).iload(3);
        b.branch(Opcode::IfICmpGe, noswap);
        // tmp = data[ii]; data[ii] = data[jj]; data[jj] = tmp
        b.aload(0).iload(5).op(Opcode::DALoad).dstore(7);
        b.aload(0).iload(5);
        b.aload(0).iload(6).op(Opcode::DALoad);
        b.op(Opcode::DAStore);
        b.aload(0).iload(6).dload(7).op(Opcode::DAStore);
        // and the imaginary halves
        b.aload(0).iload(5).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad).dstore(7);
        b.aload(0).iload(5).iconst(1).op(Opcode::IAdd);
        b.aload(0).iload(6).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad);
        b.op(Opcode::DAStore);
        b.aload(0).iload(6).iconst(1).op(Opcode::IAdd).dload(7).op(Opcode::DAStore);
        b.bind(noswap);
        // while (k <= j) { j -= k; k /= 2 }
        let wtop = b.new_label();
        let wend = b.new_label();
        b.bind(wtop);
        b.iload(4).iload(3);
        b.branch(Opcode::IfICmpGt, wend);
        b.iload(3).iload(4).op(Opcode::ISub).istore(3);
        b.iload(4).iconst(2).op(Opcode::IDiv).istore(4);
        b.branch(Opcode::Goto, wtop);
        b.bind(wend);
        // j += k
        b.iload(3).iload(4).op(Opcode::IAdd).istore(3);
    });
    b.op(Opcode::ReturnVoid);
    let bitreverse = p.add_method(b.finish().expect("bitreverse"));

    // FFT.transform_internal(data, direction) -> void
    let mut b = MethodBuilder::new("FFT.transform_internal", 2, false);
    // locals: 0 data, 1 direction, 2 n, 3 logn, 4 bit, 5 dual,
    //         6 wr, 7 wi, 8 s, 9 s2, 10 a, 11 bb, 12 i, 13 j,
    //         14 wdr, 15 wdi, 16 theta, 17 t, 18 tmpr, 19 z1r, 20 z1i
    b.aload(0).op(Opcode::ArrayLength).iconst(2).op(Opcode::IDiv).istore(2);
    let not_trivial = b.new_label();
    b.iload(2).iconst(1);
    b.branch(Opcode::IfICmpNe, not_trivial);
    b.op(Opcode::ReturnVoid);
    b.bind(not_trivial);
    // logn = log2(n)
    b.iconst(0).istore(3);
    b.iconst(1).istore(4);
    {
        let top = b.new_label();
        let end = b.new_label();
        b.bind(top);
        b.iload(4).iload(2);
        b.branch(Opcode::IfICmpGe, end);
        b.iload(4).iconst(1).op(Opcode::IShl).istore(4);
        b.iinc(3, 1);
        b.branch(Opcode::Goto, top);
        b.bind(end);
    }
    b.aload(0);
    b.invoke(Opcode::InvokeStatic, bitreverse, 1, false);
    // outer loop over bits
    b.iconst(1).istore(5);
    for_up(&mut b, 4, Src::Const(0), Src::Reg(3), 1, |b| {
        b.dconst(1.0).dstore(6);
        b.dconst(0.0).dstore(7);
        // theta = 2*direction*PI / (2*dual)
        b.dconst(2.0);
        b.iload(1).op(Opcode::I2D).op(Opcode::DMul);
        b.dconst(PI).op(Opcode::DMul);
        b.iconst(2).iload(5).op(Opcode::IMul).op(Opcode::I2D);
        b.op(Opcode::DDiv);
        b.dstore(16);
        // s = sin(theta); t = sin(theta/2); s2 = 2*t*t
        b.dload(16);
        b.invoke(Opcode::InvokeStatic, sin, 1, true);
        b.dstore(8);
        b.dload(16).dconst(2.0).op(Opcode::DDiv);
        b.invoke(Opcode::InvokeStatic, sin, 1, true);
        b.dstore(17);
        b.dconst(2.0).dload(17).op(Opcode::DMul).dload(17).op(Opcode::DMul).dstore(9);
        // a = 0 butterfly: for (bb = 0; bb < n; bb += 2*dual)
        b.iconst(0).istore(11);
        {
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(11).iload(2);
            b.branch(Opcode::IfICmpGe, end);
            b.iload(11).iconst(2).op(Opcode::IMul).istore(12);
            b.iload(11).iload(5).op(Opcode::IAdd).iconst(2).op(Opcode::IMul).istore(13);
            // wd = data[j..j+1]
            b.aload(0).iload(13).op(Opcode::DALoad).dstore(14);
            b.aload(0).iload(13).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad).dstore(15);
            // data[j] = data[i] - wdr; data[j+1] = data[i+1] - wdi
            b.aload(0).iload(13);
            b.aload(0).iload(12).op(Opcode::DALoad).dload(14).op(Opcode::DSub);
            b.op(Opcode::DAStore);
            b.aload(0).iload(13).iconst(1).op(Opcode::IAdd);
            b.aload(0).iload(12).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad);
            b.dload(15).op(Opcode::DSub);
            b.op(Opcode::DAStore);
            // data[i] += wdr; data[i+1] += wdi
            b.aload(0).iload(12);
            b.aload(0).iload(12).op(Opcode::DALoad).dload(14).op(Opcode::DAdd);
            b.op(Opcode::DAStore);
            b.aload(0).iload(12).iconst(1).op(Opcode::IAdd);
            b.aload(0).iload(12).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad);
            b.dload(15).op(Opcode::DAdd);
            b.op(Opcode::DAStore);
            b.iload(11).iconst(2).iload(5).op(Opcode::IMul).op(Opcode::IAdd).istore(11);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        }
        // for (a = 1; a < dual; a++) with the trig recurrence
        for_up(b, 10, Src::Const(1), Src::Reg(5), 1, |b| {
            // tmpr = wr - s*wi - s2*wr
            b.dload(6);
            b.dload(8).dload(7).op(Opcode::DMul).op(Opcode::DSub);
            b.dload(9).dload(6).op(Opcode::DMul).op(Opcode::DSub);
            b.dstore(18);
            // wi = wi + s*wr - s2*wi
            b.dload(7);
            b.dload(8).dload(6).op(Opcode::DMul).op(Opcode::DAdd);
            b.dload(9).dload(7).op(Opcode::DMul).op(Opcode::DSub);
            b.dstore(7);
            b.dload(18).dstore(6);
            // inner butterflies
            b.iconst(0).istore(11);
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(11).iload(2);
            b.branch(Opcode::IfICmpGe, end);
            b.iload(11).iload(10).op(Opcode::IAdd).iconst(2).op(Opcode::IMul).istore(12);
            b.iload(11)
                .iload(10)
                .op(Opcode::IAdd)
                .iload(5)
                .op(Opcode::IAdd)
                .iconst(2)
                .op(Opcode::IMul)
                .istore(13);
            b.aload(0).iload(13).op(Opcode::DALoad).dstore(19);
            b.aload(0).iload(13).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad).dstore(20);
            // wd = w * z1 (complex)
            b.dload(6)
                .dload(19)
                .op(Opcode::DMul)
                .dload(7)
                .dload(20)
                .op(Opcode::DMul)
                .op(Opcode::DSub)
                .dstore(14);
            b.dload(6)
                .dload(20)
                .op(Opcode::DMul)
                .dload(7)
                .dload(19)
                .op(Opcode::DMul)
                .op(Opcode::DAdd)
                .dstore(15);
            b.aload(0).iload(13);
            b.aload(0).iload(12).op(Opcode::DALoad).dload(14).op(Opcode::DSub);
            b.op(Opcode::DAStore);
            b.aload(0).iload(13).iconst(1).op(Opcode::IAdd);
            b.aload(0).iload(12).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad);
            b.dload(15).op(Opcode::DSub);
            b.op(Opcode::DAStore);
            b.aload(0).iload(12);
            b.aload(0).iload(12).op(Opcode::DALoad).dload(14).op(Opcode::DAdd);
            b.op(Opcode::DAStore);
            b.aload(0).iload(12).iconst(1).op(Opcode::IAdd);
            b.aload(0).iload(12).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad);
            b.dload(15).op(Opcode::DAdd);
            b.op(Opcode::DAStore);
            b.iload(11).iconst(2).iload(5).op(Opcode::IMul).op(Opcode::IAdd).istore(11);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        });
        // dual *= 2
        b.iload(5).iconst(2).op(Opcode::IMul).istore(5);
    });
    b.op(Opcode::ReturnVoid);
    let transform_internal = p.add_method(b.finish().expect("transform_internal"));

    // FFT.transform(data)
    let mut b = MethodBuilder::new("FFT.transform", 1, false);
    b.aload(0).iconst(1);
    b.invoke(Opcode::InvokeStatic, transform_internal, 2, false);
    b.op(Opcode::ReturnVoid);
    let transform = p.add_method(b.finish().expect("transform"));

    // FFT.inverse(data): transform with direction -1, then scale by 1/n.
    let mut b = MethodBuilder::new("FFT.inverse", 1, false);
    // locals: 0 data, 1 n, 2 i, 3 norm(d), 4 nd
    b.aload(0).iconst(-1);
    b.invoke(Opcode::InvokeStatic, transform_internal, 2, false);
    b.aload(0).op(Opcode::ArrayLength).istore(4);
    b.dconst(1.0);
    b.iload(4).iconst(2).op(Opcode::IDiv).op(Opcode::I2D);
    b.op(Opcode::DDiv).dstore(3);
    for_up(&mut b, 2, Src::Const(0), Src::Reg(4), 1, |b| {
        b.aload(0).iload(2);
        b.aload(0).iload(2).op(Opcode::DALoad).dload(3).op(Opcode::DMul);
        b.op(Opcode::DAStore);
    });
    b.op(Opcode::ReturnVoid);
    let inverse = p.add_method(b.finish().expect("inverse"));

    (bitreverse, transform_internal, transform, inverse)
}

/// Builds the `scimark.fft` benchmark.
#[must_use]
pub fn fft_benchmark(n: i32) -> Benchmark {
    let mut p = Program::new();
    let arr = p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
    let (_random_class, make, next_double) = build_random(&mut p);
    let sin = build_sin(&mut p);
    let [random_vector, copy_vector, _, _, _] = build_kernel_helpers(&mut p, arr, next_double);
    let (bitreverse, transform_internal, transform, inverse) = build_fft(&mut p, sin);

    // driver(n): round-trip FFT error accumulation.
    let mut b = MethodBuilder::new("fft.driver", 1, true);
    // locals: 0 n, 1 r, 2 data, 3 copy, 4 i, 5 acc(d), 6 len
    b.iconst(20);
    b.invoke(Opcode::InvokeStatic, make, 1, true);
    b.astore(1);
    // RandomVector(2n, r)
    b.iload(0).iconst(2).op(Opcode::IMul);
    b.aload(1);
    b.invoke(Opcode::InvokeStatic, random_vector, 2, true);
    b.astore(2);
    b.aload(2);
    b.invoke(Opcode::InvokeStatic, copy_vector, 1, true);
    b.astore(3);
    b.aload(2);
    b.invoke(Opcode::InvokeStatic, transform, 1, false);
    b.aload(2);
    b.invoke(Opcode::InvokeStatic, inverse, 1, false);
    b.dconst(0.0).dstore(5);
    b.aload(2).op(Opcode::ArrayLength).istore(6);
    for_up(&mut b, 4, Src::Const(0), Src::Reg(6), 1, |b| {
        b.dload(5);
        b.aload(2).iload(4).op(Opcode::DALoad);
        b.aload(3).iload(4).op(Opcode::DALoad);
        b.op(Opcode::DSub);
        dabs(b);
        b.op(Opcode::DAdd);
        b.dstore(5);
    });
    b.dload(5);
    b.op(Opcode::DReturn);
    let driver = p.add_method(b.finish().expect("fft.driver"));

    p.validate().expect("fft benchmark valid");
    Benchmark {
        name: "scimark.fft",
        suite: SuiteKind::Jvm2008,
        program: p,
        driver,
        driver_args: vec![Value::Int(n)],
        hot: vec![transform_internal, bitreverse, next_double, inverse],
    }
}

/// Adds `LU.factor` and returns its id.
pub fn build_lu_factor(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("LU.factor", 2, true);
    // locals: 0 A, 1 pivot, 2 N, 3 j, 4 jp, 5 t(d), 6 i, 7 recp(d),
    //         8 k, 9 ab(d), 10 rowj, 11 rowi, 12 Nm1
    b.aload(0).op(Opcode::ArrayLength).istore(2);
    b.iload(2).iconst(1).op(Opcode::ISub).istore(12);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(2), 1, |b| {
        // partial pivot search
        b.iload(3).istore(4);
        b.aload(0).iload(3).op(Opcode::AALoad).iload(3).op(Opcode::DALoad);
        dabs(b);
        b.dstore(5);
        b.iload(3).iconst(1).op(Opcode::IAdd).istore(6);
        {
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(6).iload(2);
            b.branch(Opcode::IfICmpGe, end);
            b.aload(0).iload(6).op(Opcode::AALoad).iload(3).op(Opcode::DALoad);
            dabs(b);
            b.dstore(9);
            let no_better = b.new_label();
            b.dload(9).dload(5).op(Opcode::DCmpL);
            b.branch(Opcode::IfLe, no_better);
            b.iload(6).istore(4);
            b.dload(9).dstore(5);
            b.bind(no_better);
            b.iinc(6, 1);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        }
        b.aload(1).iload(3).iload(4).op(Opcode::IAStore);
        // singular check: if (A[jp][j] == 0) return 1
        let nonsingular = b.new_label();
        b.aload(0).iload(4).op(Opcode::AALoad).iload(3).op(Opcode::DALoad);
        b.dconst(0.0).op(Opcode::DCmpL);
        b.branch(Opcode::IfNe, nonsingular);
        b.iconst(1);
        b.op(Opcode::IReturn);
        b.bind(nonsingular);
        // row swap if needed
        let noswap = b.new_label();
        b.iload(4).iload(3);
        b.branch(Opcode::IfICmpEq, noswap);
        b.aload(0).iload(4).op(Opcode::AALoad).astore(10);
        b.aload(0).iload(4);
        b.aload(0).iload(3).op(Opcode::AALoad);
        b.op(Opcode::AAStore);
        b.aload(0).iload(3).aload(10).op(Opcode::AAStore);
        b.bind(noswap);
        // scale below the pivot
        let no_scale = b.new_label();
        b.iload(3).iload(12);
        b.branch(Opcode::IfICmpGe, no_scale);
        b.dconst(1.0);
        b.aload(0).iload(3).op(Opcode::AALoad).iload(3).op(Opcode::DALoad);
        b.op(Opcode::DDiv).dstore(7);
        b.iload(3).iconst(1).op(Opcode::IAdd).istore(6);
        {
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(6).iload(2);
            b.branch(Opcode::IfICmpGe, end);
            b.aload(0).iload(6).op(Opcode::AALoad).astore(11);
            b.aload(11).iload(3);
            b.aload(11).iload(3).op(Opcode::DALoad).dload(7).op(Opcode::DMul);
            b.op(Opcode::DAStore);
            b.iinc(6, 1);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        }
        // trailing update
        b.aload(0).iload(3).op(Opcode::AALoad).astore(10);
        b.iload(3).iconst(1).op(Opcode::IAdd).istore(6);
        {
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(6).iload(2);
            b.branch(Opcode::IfICmpGe, end);
            b.aload(0).iload(6).op(Opcode::AALoad).astore(11);
            b.iload(3).iconst(1).op(Opcode::IAdd).istore(8);
            {
                let ktop = b.new_label();
                let kend = b.new_label();
                b.bind(ktop);
                b.iload(8).iload(2);
                b.branch(Opcode::IfICmpGe, kend);
                // A[i][k] -= A[i][j] * A[j][k]
                b.aload(11).iload(8);
                b.aload(11).iload(8).op(Opcode::DALoad);
                b.aload(11).iload(3).op(Opcode::DALoad);
                b.aload(10).iload(8).op(Opcode::DALoad);
                b.op(Opcode::DMul).op(Opcode::DSub);
                b.op(Opcode::DAStore);
                b.iinc(8, 1);
                b.branch(Opcode::Goto, ktop);
                b.bind(kend);
            }
            b.iinc(6, 1);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        }
        b.bind(no_scale);
    });
    b.iconst(0);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("LU.factor"))
}

/// Builds the `scimark.lu` benchmark.
#[must_use]
pub fn lu_benchmark(n: i32) -> Benchmark {
    let mut p = Program::new();
    let arr = p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
    let (_rc, make, next_double) = build_random(&mut p);
    let [random_vector, _, alloc_matrix, randomize_matrix, matvec] =
        build_kernel_helpers(&mut p, arr, next_double);
    let factor = build_lu_factor(&mut p);

    // driver(n): randomize, matvec (the residual check SciMark performs),
    // factor, return A[n-1][n-1] + y[0] + code.
    let mut b = MethodBuilder::new("lu.driver", 1, true);
    // locals: 0 n, 1 r, 2 A, 3 pivot, 4 code, 5 x, 6 y
    b.iconst(7);
    b.invoke(Opcode::InvokeStatic, make, 1, true);
    b.astore(1);
    b.iload(0).iload(0);
    b.invoke(Opcode::InvokeStatic, alloc_matrix, 2, true);
    b.astore(2);
    b.aload(2).aload(1);
    b.invoke(Opcode::InvokeStatic, randomize_matrix, 2, false);
    // y = A * x before factorization (kernel.matvec, Table 3's 3rd method)
    b.iload(0).aload(1);
    b.invoke(Opcode::InvokeStatic, random_vector, 2, true);
    b.astore(5);
    b.iload(0);
    b.newarray(ArrayKind::Double);
    b.astore(6);
    b.aload(2).aload(5).aload(6);
    b.invoke(Opcode::InvokeStatic, matvec, 3, false);
    b.iload(0);
    b.newarray(ArrayKind::Int);
    b.astore(3);
    b.aload(2).aload(3);
    b.invoke(Opcode::InvokeStatic, factor, 2, true);
    b.istore(4);
    b.aload(2).iload(0).iconst(1).op(Opcode::ISub).op(Opcode::AALoad);
    b.iload(0).iconst(1).op(Opcode::ISub).op(Opcode::DALoad);
    b.iload(4).op(Opcode::I2D).op(Opcode::DAdd);
    b.aload(6).iconst(0).op(Opcode::DALoad).op(Opcode::DAdd);
    b.op(Opcode::DReturn);
    let driver = p.add_method(b.finish().expect("lu.driver"));

    p.validate().expect("lu benchmark valid");
    Benchmark {
        name: "scimark.lu",
        suite: SuiteKind::Jvm2008,
        program: p,
        driver,
        driver_args: vec![Value::Int(n)],
        hot: vec![factor, next_double, matvec],
    }
}

/// Adds `SOR.execute` and returns its id.
pub fn build_sor_execute(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("SOR.execute", 3, true);
    // args: 0 omega(d), 1 G, 2 num_iterations
    // locals: 3 M, 4 N, 5 oof(d), 6 omo(d), 7 pcount, 8 i, 9 j,
    //         10 Gi, 11 Gim1, 12 Gip1, 13 Mm1, 14 Nm1
    b.aload(1).op(Opcode::ArrayLength).istore(3);
    b.aload(1).iconst(0).op(Opcode::AALoad).op(Opcode::ArrayLength).istore(4);
    b.dload(0).dconst(0.25).op(Opcode::DMul).dstore(5);
    b.dconst(1.0).dload(0).op(Opcode::DSub).dstore(6);
    b.iload(3).iconst(1).op(Opcode::ISub).istore(13);
    b.iload(4).iconst(1).op(Opcode::ISub).istore(14);
    b.iload(2).istore(7);
    countdown(&mut b, 7, |b| {
        for_up(b, 8, Src::Const(1), Src::Reg(13), 1, |b| {
            b.aload(1).iload(8).op(Opcode::AALoad).astore(10);
            b.aload(1).iload(8).iconst(1).op(Opcode::ISub).op(Opcode::AALoad).astore(11);
            b.aload(1).iload(8).iconst(1).op(Opcode::IAdd).op(Opcode::AALoad).astore(12);
            for_up(b, 9, Src::Const(1), Src::Reg(14), 1, |b| {
                b.aload(10).iload(9);
                // omega_over_four * (up + down + left + right)
                b.dload(5);
                b.aload(11).iload(9).op(Opcode::DALoad);
                b.aload(12).iload(9).op(Opcode::DALoad);
                b.op(Opcode::DAdd);
                b.aload(10).iload(9).iconst(1).op(Opcode::ISub).op(Opcode::DALoad);
                b.op(Opcode::DAdd);
                b.aload(10).iload(9).iconst(1).op(Opcode::IAdd).op(Opcode::DALoad);
                b.op(Opcode::DAdd);
                b.op(Opcode::DMul);
                // + one_minus_omega * Gi[j]
                b.dload(6);
                b.aload(10).iload(9).op(Opcode::DALoad);
                b.op(Opcode::DMul);
                b.op(Opcode::DAdd);
                b.op(Opcode::DAStore);
            });
        });
    });
    b.aload(1).iconst(1).op(Opcode::AALoad).iconst(1).op(Opcode::DALoad);
    b.op(Opcode::DReturn);
    p.add_method(b.finish().expect("SOR.execute"))
}

/// Builds the `scimark.sor` benchmark.
#[must_use]
pub fn sor_benchmark(n: i32, iters: i32) -> Benchmark {
    let mut p = Program::new();
    let arr = p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
    let (_rc, make, next_double) = build_random(&mut p);
    let [_, _, alloc_matrix, randomize_matrix, _] = build_kernel_helpers(&mut p, arr, next_double);
    let execute = build_sor_execute(&mut p);

    let mut b = MethodBuilder::new("sor.driver", 2, true);
    // locals: 0 n, 1 iters, 2 r, 3 G
    b.iconst(11);
    b.invoke(Opcode::InvokeStatic, make, 1, true);
    b.astore(2);
    b.iload(0).iload(0);
    b.invoke(Opcode::InvokeStatic, alloc_matrix, 2, true);
    b.astore(3);
    b.aload(3).aload(2);
    b.invoke(Opcode::InvokeStatic, randomize_matrix, 2, false);
    b.dconst(1.25).aload(3).iload(1);
    b.invoke(Opcode::InvokeStatic, execute, 3, true);
    b.op(Opcode::DReturn);
    let driver = p.add_method(b.finish().expect("sor.driver"));

    p.validate().expect("sor benchmark valid");
    Benchmark {
        name: "scimark.sor",
        suite: SuiteKind::Jvm2008,
        program: p,
        driver,
        driver_args: vec![Value::Int(n), Value::Int(iters)],
        hot: vec![execute, next_double],
    }
}

/// Adds `SparseCompRow.matmult` and returns its id.
pub fn build_sparse_matmult(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("SparseCompRow.matmult", 6, false);
    // args: 0 y, 1 val, 2 row, 3 col, 4 x, 5 iters
    // locals: 6 M, 7 reps, 8 r, 9 sum(d), 10 i, 11 rowRp1
    b.aload(2).op(Opcode::ArrayLength).iconst(1).op(Opcode::ISub).istore(6);
    b.iload(5).istore(7);
    countdown(&mut b, 7, |b| {
        for_up(b, 8, Src::Const(0), Src::Reg(6), 1, |b| {
            b.dconst(0.0).dstore(9);
            b.aload(2).iload(8).iconst(1).op(Opcode::IAdd).op(Opcode::IALoad).istore(11);
            // for (i = row[r]; i < row[r+1]; i++)
            b.aload(2).iload(8).op(Opcode::IALoad).istore(10);
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(10).iload(11);
            b.branch(Opcode::IfICmpGe, end);
            b.dload(9);
            b.aload(4);
            b.aload(3).iload(10).op(Opcode::IALoad);
            b.op(Opcode::DALoad);
            b.aload(1).iload(10).op(Opcode::DALoad);
            b.op(Opcode::DMul).op(Opcode::DAdd);
            b.dstore(9);
            b.iinc(10, 1);
            b.branch(Opcode::Goto, top);
            b.bind(end);
            b.aload(0).iload(8).dload(9).op(Opcode::DAStore);
        });
    });
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("matmult"))
}

/// Builds the `scimark.sparse` benchmark.
#[must_use]
pub fn sparse_benchmark(n: i32, nz_per_row: i32, iters: i32) -> Benchmark {
    let mut p = Program::new();
    let arr = p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
    let (_rc, make, next_double) = build_random(&mut p);
    let [random_vector, _, _, _, _] = build_kernel_helpers(&mut p, arr, next_double);
    let matmult = build_sparse_matmult(&mut p);

    let mut b = MethodBuilder::new("sparse.driver", 3, true);
    // args: 0 n, 1 nz, 2 iters
    // locals: 3 r, 4 nnz, 5 val, 6 row, 7 col, 8 x, 9 y, 10 i, 11 k
    b.iconst(101);
    b.invoke(Opcode::InvokeStatic, make, 1, true);
    b.astore(3);
    b.iload(0).iload(1).op(Opcode::IMul).istore(4);
    b.iload(4).aload(3);
    b.invoke(Opcode::InvokeStatic, random_vector, 2, true);
    b.astore(5);
    b.iload(0).iconst(1).op(Opcode::IAdd);
    b.newarray(ArrayKind::Int);
    b.astore(6);
    b.iload(4);
    b.newarray(ArrayKind::Int);
    b.astore(7);
    b.iload(0).aload(3);
    b.invoke(Opcode::InvokeStatic, random_vector, 2, true);
    b.astore(8);
    b.iload(0);
    b.newarray(ArrayKind::Double);
    b.astore(9);
    // row[i] = i*nz
    for_up(&mut b, 10, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(6).iload(10).iload(10).iload(1).op(Opcode::IMul).op(Opcode::IAStore);
    });
    b.aload(6).iload(0).iload(4).op(Opcode::IAStore);
    // col[i*nz + k] = (i*5 + k*3) % n
    for_up(&mut b, 10, Src::Const(0), Src::Reg(0), 1, |b| {
        for_up(b, 11, Src::Const(0), Src::Reg(1), 1, |b| {
            b.aload(7);
            b.iload(10).iload(1).op(Opcode::IMul).iload(11).op(Opcode::IAdd);
            b.iload(10)
                .iconst(5)
                .op(Opcode::IMul)
                .iload(11)
                .iconst(3)
                .op(Opcode::IMul)
                .op(Opcode::IAdd)
                .iload(0)
                .op(Opcode::IRem);
            b.op(Opcode::IAStore);
        });
    });
    b.aload(9).aload(5).aload(6).aload(7).aload(8).iload(2);
    b.invoke(Opcode::InvokeStatic, matmult, 6, false);
    b.aload(9).iload(0).iconst(1).op(Opcode::ISub).op(Opcode::DALoad);
    b.op(Opcode::DReturn);
    let driver = p.add_method(b.finish().expect("sparse.driver"));

    p.validate().expect("sparse benchmark valid");
    Benchmark {
        name: "scimark.sparse",
        suite: SuiteKind::Jvm2008,
        program: p,
        driver,
        driver_args: vec![Value::Int(n), Value::Int(nz_per_row), Value::Int(iters)],
        hot: vec![matmult, next_double],
    }
}

/// Adds `MonteCarlo.integrate` and returns its id.
pub fn build_integrate(p: &mut Program, make: MethodId, next_double: MethodId) -> MethodId {
    let mut b = MethodBuilder::new("MonteCarlo.integrate", 1, true);
    // locals: 0 n, 1 r, 2 under, 3 count, 4 x(d), 5 y(d)
    b.iconst(113);
    b.invoke(Opcode::InvokeStatic, make, 1, true);
    b.astore(1);
    b.iconst(0).istore(2);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(1);
        b.invoke(Opcode::InvokeVirtual, next_double, 1, true);
        b.dstore(4);
        b.aload(1);
        b.invoke(Opcode::InvokeVirtual, next_double, 1, true);
        b.dstore(5);
        let outside = b.new_label();
        b.dload(4).dload(4).op(Opcode::DMul);
        b.dload(5).dload(5).op(Opcode::DMul);
        b.op(Opcode::DAdd);
        b.dconst(1.0);
        b.op(Opcode::DCmpG);
        b.branch(Opcode::IfGt, outside);
        b.iinc(2, 1);
        b.bind(outside);
    });
    b.dconst(4.0);
    b.iload(2).op(Opcode::I2D).op(Opcode::DMul);
    b.iload(0).op(Opcode::I2D).op(Opcode::DDiv);
    b.op(Opcode::DReturn);
    p.add_method(b.finish().expect("integrate"))
}

/// Builds the `scimark.monte_carlo` benchmark.
#[must_use]
pub fn monte_carlo_benchmark(samples: i32) -> Benchmark {
    let mut p = Program::new();
    let (_rc, make, next_double) = build_random(&mut p);
    let integrate = build_integrate(&mut p, make, next_double);

    let mut b = MethodBuilder::new("monte_carlo.driver", 1, true);
    b.iload(0);
    b.invoke(Opcode::InvokeStatic, integrate, 1, true);
    b.op(Opcode::DReturn);
    let driver = p.add_method(b.finish().expect("mc.driver"));

    p.validate().expect("monte_carlo benchmark valid");
    Benchmark {
        name: "scimark.monte_carlo",
        suite: SuiteKind::Jvm2008,
        program: p,
        driver,
        driver_args: vec![Value::Int(samples)],
        hot: vec![next_double, integrate],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_interp::Interp;

    #[test]
    fn next_double_is_in_unit_interval_and_deterministic() {
        let mut p = Program::new();
        let (_c, make, next) = build_random(&mut p);
        p.validate().unwrap();
        let mut jvm = Interp::new(&p);
        let r = jvm.run(make, &[Value::Int(42)]).unwrap().unwrap();
        let mut last = -1.0;
        for _ in 0..100 {
            let v = jvm.run(next, &[r]).unwrap().unwrap().as_double().unwrap();
            assert!((0.0..=1.0).contains(&v), "out of range: {v}");
            assert!(v != last, "generator stuck");
            last = v;
        }
    }

    #[test]
    fn sin_accuracy() {
        let mut p = Program::new();
        let sin = build_sin(&mut p);
        p.validate().unwrap();
        let mut jvm = Interp::new(&p);
        for x in [-7.0, -3.0, -1.0, 0.0, 0.5, 1.0, 2.0, 3.15, 6.0, 12.5] {
            let got = jvm.run(sin, &[Value::Double(x)]).unwrap().unwrap().as_double().unwrap();
            assert!((got - f64::sin(x)).abs() < 1e-6, "sin({x}) = {got}");
        }
    }

    #[test]
    fn fft_round_trip_is_exact() {
        let bench = fft_benchmark(32);
        let acc = bench.run().unwrap().unwrap().as_double().unwrap();
        assert!(acc < 1e-6, "FFT round-trip error {acc}");
    }

    #[test]
    fn lu_factor_runs() {
        let bench = lu_benchmark(8);
        let v = bench.run().unwrap().unwrap().as_double().unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn lu_factor_matches_rust_reference() {
        // Factor a small random matrix in the interpreter and compare the
        // in-place LU against a Rust implementation of the same algorithm.
        let mut p = Program::new();
        let arr =
            p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
        let (_rc, make, next_double) = build_random(&mut p);
        let [_, _, alloc, randomize, _] = build_kernel_helpers(&mut p, arr, next_double);
        let factor = build_lu_factor(&mut p);
        p.validate().unwrap();

        let n = 5usize;
        let mut jvm = Interp::new(&p);
        let r = jvm.run(make, &[Value::Int(7)]).unwrap().unwrap();
        let a = jvm.run(alloc, &[Value::Int(n as i32), Value::Int(n as i32)]).unwrap().unwrap();
        jvm.run(randomize, &[a, r]).unwrap();

        // Snapshot the matrix before factorization.
        let read = |jvm: &Interp<'_>, a: Value| -> Vec<Vec<f64>> {
            let h = a.as_ref_handle().unwrap();
            (0..n)
                .map(|i| {
                    let row = jvm.state.heap.array_get(h, i as i32).unwrap();
                    let rh = row.as_ref_handle().unwrap();
                    (0..n)
                        .map(|j| {
                            jvm.state.heap.array_get(rh, j as i32).unwrap().as_double().unwrap()
                        })
                        .collect()
                })
                .collect()
        };
        let mut reference = read(&jvm, a);
        let pivot_h = jvm.state.heap.alloc_array(ArrayKind::Int, n as i32).unwrap();
        let code = jvm.run(factor, &[a, Value::Ref(Some(pivot_h))]).unwrap().unwrap();
        assert_eq!(code, Value::Int(0), "matrix unexpectedly singular");
        let got = read(&jvm, a);

        // Rust reference: identical partial-pivot in-place LU.
        for j in 0..n {
            let mut jp = j;
            let mut t = reference[j][j].abs();
            for (i, row) in reference.iter().enumerate().take(n).skip(j + 1) {
                let ab = row[j].abs();
                if ab > t {
                    jp = i;
                    t = ab;
                }
            }
            if jp != j {
                reference.swap(jp, j);
            }
            assert!(reference[j][j] != 0.0);
            if j < n - 1 {
                let recp = 1.0 / reference[j][j];
                for row in reference.iter_mut().skip(j + 1) {
                    row[j] *= recp;
                }
            }
            for ii in (j + 1)..n {
                for kk in (j + 1)..n {
                    reference[ii][kk] -= reference[ii][j] * reference[j][kk];
                }
            }
        }
        for (gr, rr) in got.iter().zip(&reference) {
            for (g, r) in gr.iter().zip(rr) {
                assert!((g - r).abs() < 1e-12, "LU divergence: {g} vs {r}");
            }
        }
    }

    #[test]
    fn sor_converges() {
        let bench = sor_benchmark(8, 10);
        let v = bench.run().unwrap().unwrap().as_double().unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn sparse_matmult_runs() {
        let bench = sparse_benchmark(20, 4, 3);
        let v = bench.run().unwrap().unwrap().as_double().unwrap();
        assert!(v.is_finite());
    }

    #[test]
    fn monte_carlo_approximates_pi() {
        let bench = monte_carlo_benchmark(2_000);
        let pi = bench.run().unwrap().unwrap().as_double().unwrap();
        assert!((pi - std::f64::consts::PI).abs() < 0.15, "π estimate {pi}");
    }
}

//! Small emission helpers shared by the kernel builders.

use javaflow_bytecode::{MethodBuilder, Opcode};

/// A loop bound or initial value: a constant or a register.
#[derive(Debug, Clone, Copy)]
pub enum Src {
    /// Integer constant.
    Const(i32),
    /// Integer register.
    Reg(u16),
}

/// Pushes a [`Src`] onto the stack.
pub fn push(b: &mut MethodBuilder, s: Src) {
    match s {
        Src::Const(v) => {
            b.iconst(v);
        }
        Src::Reg(r) => {
            b.iload(r);
        }
    }
}

/// Emits `for (i = start; i < end; i += step) { body }` (javac shape:
/// condition at the top, `iinc` + back-edge `goto`).
pub fn for_up(
    b: &mut MethodBuilder,
    i: u16,
    start: Src,
    end: Src,
    step: i32,
    body: impl FnOnce(&mut MethodBuilder),
) {
    push(b, start);
    b.istore(i);
    let top = b.new_label();
    let exit = b.new_label();
    b.bind(top);
    b.iload(i);
    push(b, end);
    b.branch(Opcode::IfICmpGe, exit);
    body(b);
    b.iinc(i, step);
    b.branch(Opcode::Goto, top);
    b.bind(exit);
}

/// Emits `while (count-- > 0) { body }` using a countdown register, the
/// shape javac emits for simple repeat loops.
pub fn countdown(b: &mut MethodBuilder, counter: u16, body: impl FnOnce(&mut MethodBuilder)) {
    let top = b.new_label();
    let exit = b.new_label();
    b.bind(top);
    b.iload(counter);
    b.branch(Opcode::IfLe, exit);
    body(b);
    b.iinc(counter, -1);
    b.branch(Opcode::Goto, top);
    b.bind(exit);
}

/// Emits `if (<top-of-stack int> != 0) { then }` (condition consumed).
pub fn if_nonzero(b: &mut MethodBuilder, then: impl FnOnce(&mut MethodBuilder)) {
    let skip = b.new_label();
    b.branch(Opcode::IfEq, skip);
    then(b);
    b.bind(skip);
}

/// Emits `|double|` of the double on top of the stack.
pub fn dabs(b: &mut MethodBuilder) {
    b.op(Opcode::Dup);
    b.dconst(0.0);
    b.op(Opcode::DCmpG);
    let skip = b.new_label();
    b.branch(Opcode::IfGe, skip);
    b.op(Opcode::DNeg);
    b.bind(skip);
}

/// Loads `array[index]` as a double: `aload a; iload i; daload`.
pub fn daload(b: &mut MethodBuilder, arr: u16, idx: u16) {
    b.aload(arr);
    b.iload(idx);
    b.op(Opcode::DALoad);
}

/// Stores the double on top of the stack into `array[index]`. The value
/// must be pushed *after* calling this function's prologue, so this helper
/// instead takes a closure that pushes the value.
pub fn dastore(b: &mut MethodBuilder, arr: u16, idx: u16, value: impl FnOnce(&mut MethodBuilder)) {
    b.aload(arr);
    b.iload(idx);
    value(b);
    b.op(Opcode::DAStore);
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::{Program, Value};
    use javaflow_interp::Interp;

    #[test]
    fn for_up_counts() {
        // sum 0..n
        let mut b = MethodBuilder::new("t", 1, true);
        b.iconst(0);
        b.istore(2);
        for_up(&mut b, 1, Src::Const(0), Src::Reg(0), 1, |b| {
            b.iload(2).iload(1).op(Opcode::IAdd).istore(2);
        });
        b.iload(2);
        b.op(Opcode::IReturn);
        let m = b.finish().unwrap();
        let p = Program::from(m);
        let mut i = Interp::new(&p);
        let r = i.run(javaflow_bytecode::MethodId(0), &[Value::Int(5)]).unwrap();
        assert_eq!(r, Some(Value::Int(10))); // 0+1+2+3+4
    }

    #[test]
    fn countdown_runs_n_times() {
        let mut b = MethodBuilder::new("t", 1, true);
        b.iconst(0);
        b.istore(1);
        // copy arg into a scratch counter
        b.iload(0);
        b.istore(2);
        countdown(&mut b, 2, |b| {
            b.iinc(1, 3);
        });
        b.iload(1);
        b.op(Opcode::IReturn);
        let m = b.finish().unwrap();
        let p = Program::from(m);
        let mut i = Interp::new(&p);
        let r = i.run(javaflow_bytecode::MethodId(0), &[Value::Int(4)]).unwrap();
        assert_eq!(r, Some(Value::Int(12)));
    }

    #[test]
    fn dabs_negates_negative() {
        let mut b = MethodBuilder::new("t", 1, true);
        b.dload(0);
        dabs(&mut b);
        b.op(Opcode::DReturn);
        let m = b.finish().unwrap();
        let p = Program::from(m);
        let mut i = Interp::new(&p);
        let r = i.run(javaflow_bytecode::MethodId(0), &[Value::Double(-2.5)]).unwrap();
        assert_eq!(r, Some(Value::Double(2.5)));
        let mut i = Interp::new(&p);
        let r = i.run(javaflow_bytecode::MethodId(0), &[Value::Double(1.5)]).unwrap();
        assert_eq!(r, Some(Value::Double(1.5)));
    }
}

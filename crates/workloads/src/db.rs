//! The `_209_db` benchmark: `String.compareTo` over char arrays,
//! `Database.shell_sort` sorting an address table through `compareTo`
//! calls, and the bounds-checked `Vector.elementAt` (the Table 4 hot set).

use javaflow_bytecode::{ArrayKind, ClassDef, MethodBuilder, MethodId, Opcode, Program, Value};

use crate::util::{for_up, Src};
use crate::{Benchmark, SuiteKind};

/// Adds `String.compareTo(a, b)` — lexicographic comparison of two char
/// arrays, exactly the JDK shape: compare up to the common length, then by
/// length difference.
pub fn build_compare_to(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("String.compareTo", 2, true);
    // args: 0 a (int[]), 1 b (int[])
    // locals: 2 la, 3 lb, 4 n, 5 i, 6 d
    b.aload(0).op(Opcode::ArrayLength).istore(2);
    b.aload(1).op(Opcode::ArrayLength).istore(3);
    // n = min(la, lb)
    b.iload(2).istore(4);
    let no_min = b.new_label();
    b.iload(3).iload(2);
    b.branch(Opcode::IfICmpGe, no_min);
    b.iload(3).istore(4);
    b.bind(no_min);
    for_up(&mut b, 5, Src::Const(0), Src::Reg(4), 1, |b| {
        b.aload(0).iload(5).op(Opcode::IALoad);
        b.aload(1).iload(5).op(Opcode::IALoad);
        b.op(Opcode::ISub);
        b.istore(6);
        let equal = b.new_label();
        b.iload(6);
        b.branch(Opcode::IfEq, equal);
        b.iload(6);
        b.op(Opcode::IReturn);
        b.bind(equal);
    });
    b.iload(2).iload(3).op(Opcode::ISub);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("compareTo"))
}

/// Adds `Database.shell_sort(index, keys)` — the SPEC `_209_db` shell sort
/// over an index array, comparing records via `String.compareTo`.
pub fn build_shell_sort(p: &mut Program, compare_to: MethodId) -> MethodId {
    let mut b = MethodBuilder::new("Database.shell_sort", 2, false);
    // args: 0 index (int[]), 1 keys (ref[] of int[])
    // locals: 2 n, 3 gap, 4 i, 5 j, 6 tmp, 7 cmp
    b.aload(0).op(Opcode::ArrayLength).istore(2);
    // for (gap = n/2; gap > 0; gap /= 2)
    b.iload(2).iconst(2).op(Opcode::IDiv).istore(3);
    let gap_top = b.new_label();
    let gap_end = b.new_label();
    b.bind(gap_top);
    b.iload(3);
    b.branch(Opcode::IfLe, gap_end);
    // for (i = gap; i < n; i++)
    for_up(&mut b, 4, Src::Reg(3), Src::Reg(2), 1, |b| {
        // for (j = i - gap; j >= 0 && keys[index[j]] > keys[index[j+gap]]; j -= gap)
        b.iload(4).iload(3).op(Opcode::ISub).istore(5);
        let j_top = b.new_label();
        let j_end = b.new_label();
        b.bind(j_top);
        b.iload(5);
        b.branch(Opcode::IfLt, j_end);
        // cmp = compareTo(keys[index[j]], keys[index[j+gap]])
        b.aload(1);
        b.aload(0).iload(5).op(Opcode::IALoad);
        b.op(Opcode::AALoad);
        b.aload(1);
        b.aload(0).iload(5).iload(3).op(Opcode::IAdd).op(Opcode::IALoad);
        b.op(Opcode::AALoad);
        b.invoke(Opcode::InvokeStatic, compare_to, 2, true);
        b.istore(7);
        b.iload(7);
        b.branch(Opcode::IfLe, j_end);
        // swap index[j] and index[j+gap]
        b.aload(0).iload(5).op(Opcode::IALoad).istore(6);
        b.aload(0).iload(5);
        b.aload(0).iload(5).iload(3).op(Opcode::IAdd).op(Opcode::IALoad);
        b.op(Opcode::IAStore);
        b.aload(0).iload(5).iload(3).op(Opcode::IAdd).iload(6).op(Opcode::IAStore);
        b.iload(5).iload(3).op(Opcode::ISub).istore(5);
        b.branch(Opcode::Goto, j_top);
        b.bind(j_end);
    });
    b.iload(3).iconst(2).op(Opcode::IDiv).istore(3);
    b.branch(Opcode::Goto, gap_top);
    b.bind(gap_end);
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("shell_sort"))
}

/// Adds the `Vector` class and `Vector.elementAt` with its JDK-style
/// explicit bounds check; returns `(class, elementAt)`.
pub fn build_element_at(p: &mut Program) -> (u16, MethodId) {
    // Fields: 0 data (ref[]), 1 count.
    let class =
        p.add_class(ClassDef { name: "Vector".into(), instance_fields: 2, static_fields: 0 });
    let mut b = MethodBuilder::new("Vector.elementAt", 2, true);
    // args: 0 this, 1 i
    let ok = b.new_label();
    b.iload(1);
    b.aload(0);
    b.field(Opcode::GetField, class, 1);
    b.branch(Opcode::IfICmpLt, ok);
    b.op(Opcode::AConstNull);
    b.op(Opcode::AReturn);
    b.bind(ok);
    b.aload(0);
    b.field(Opcode::GetField, class, 0);
    b.iload(1);
    b.op(Opcode::AALoad);
    b.op(Opcode::AReturn);
    let element_at = p.add_method(b.finish().expect("elementAt"));
    (class, element_at)
}

/// Builds the `_209_db` benchmark.
#[must_use]
pub fn db_benchmark(records: i32, key_len: i32) -> Benchmark {
    let mut p = Program::new();
    let arr = p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
    let compare_to = build_compare_to(&mut p);
    let shell_sort = build_shell_sort(&mut p, compare_to);
    let (vec_class, element_at) = build_element_at(&mut p);

    let mut b = MethodBuilder::new("db.driver", 2, true);
    // args: 0 records, 1 key_len
    // locals: 2 keys, 3 index, 4 i, 5 j, 6 key, 7 v, 8 acc, 9 seed
    b.iload(0);
    b.emit(Opcode::ANewArray, javaflow_bytecode::Operand::ClassId(arr));
    b.astore(2);
    b.iload(0);
    b.newarray(ArrayKind::Int);
    b.astore(3);
    b.iconst(12_345).istore(9);
    for_up(&mut b, 4, Src::Const(0), Src::Reg(0), 1, |b| {
        b.iload(1);
        b.newarray(ArrayKind::Int);
        b.astore(6);
        for_up(b, 5, Src::Const(0), Src::Reg(1), 1, |b| {
            // seed = seed * 31 + 17; key[j] = 'a' + (seed >>> 8) % 26
            b.iload(9).iconst(31).op(Opcode::IMul).iconst(17).op(Opcode::IAdd).istore(9);
            b.aload(6).iload(5);
            b.iload(9).iconst(8).op(Opcode::IUShr).iconst(26).op(Opcode::IRem);
            b.iconst(97).op(Opcode::IAdd);
            b.op(Opcode::IAStore);
        });
        b.aload(2).iload(4).aload(6).op(Opcode::AAStore);
        b.aload(3).iload(4).iload(4).op(Opcode::IAStore);
    });
    b.aload(3).aload(2);
    b.invoke(Opcode::InvokeStatic, shell_sort, 2, false);
    // wrap keys in a Vector and walk it via elementAt, verifying order
    b.emit(Opcode::New, javaflow_bytecode::Operand::ClassId(vec_class));
    b.astore(7);
    b.aload(7).aload(2);
    b.field(Opcode::PutField, vec_class, 0);
    b.aload(7).iload(0);
    b.field(Opcode::PutField, vec_class, 1);
    b.iconst(0).istore(8);
    b.iload(0).iconst(1).op(Opcode::ISub).istore(9);
    for_up(&mut b, 4, Src::Const(0), Src::Reg(9), 1, |b| {
        // acc += (compareTo(keys[index[i]], keys[index[i+1]]) > 0) — counts
        // sort violations; elementAt exercises the bounds-checked read.
        b.aload(7);
        b.aload(3).iload(4).op(Opcode::IALoad);
        b.invoke(Opcode::InvokeVirtual, element_at, 2, true);
        b.op(Opcode::Pop);
        let ok = b.new_label();
        b.aload(2);
        b.aload(3).iload(4).op(Opcode::IALoad);
        b.op(Opcode::AALoad);
        b.aload(2);
        b.aload(3).iload(4).iconst(1).op(Opcode::IAdd).op(Opcode::IALoad);
        b.op(Opcode::AALoad);
        b.invoke(Opcode::InvokeStatic, compare_to, 2, true);
        b.branch(Opcode::IfLe, ok);
        b.iinc(8, 1);
        b.bind(ok);
    });
    b.iload(8);
    b.op(Opcode::IReturn);
    let driver = p.add_method(b.finish().expect("db.driver"));

    p.validate().expect("db benchmark valid");
    Benchmark {
        name: "_209_db",
        suite: SuiteKind::Jvm98,
        program: p,
        driver,
        driver_args: vec![Value::Int(records), Value::Int(key_len)],
        hot: vec![compare_to, shell_sort, element_at],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shell_sort_produces_sorted_order() {
        // The driver returns the number of adjacent out-of-order pairs —
        // zero iff the sort worked.
        let bench = db_benchmark(50, 8);
        assert_eq!(bench.run().unwrap().unwrap(), Value::Int(0));
    }

    #[test]
    fn compare_to_is_lexicographic() {
        let mut p = Program::new();
        let cmp = build_compare_to(&mut p);
        p.validate().unwrap();
        let mut jvm = javaflow_interp::Interp::new(&p);
        let make = |jvm: &mut javaflow_interp::Interp<'_>, s: &str| {
            let h = jvm.state.heap.alloc_array(ArrayKind::Int, s.len() as i32).unwrap();
            for (i, c) in s.chars().enumerate() {
                jvm.state.heap.array_set(Some(h), i as i32, Value::Int(c as i32)).unwrap();
            }
            Value::Ref(Some(h))
        };
        let ab = make(&mut jvm, "ab");
        let abc = make(&mut jvm, "abc");
        let abd = make(&mut jvm, "abd");
        let r = jvm.run(cmp, &[ab, abc]).unwrap().unwrap().as_int().unwrap();
        assert!(r < 0, "prefix sorts first");
        let r = jvm.run(cmp, &[abd, abc]).unwrap().unwrap().as_int().unwrap();
        assert!(r > 0);
        let r = jvm.run(cmp, &[abc, abc]).unwrap().unwrap().as_int().unwrap();
        assert_eq!(r, 0);
    }
}

//! Benchmark suite structure: the SPEC JVM98 / JVM2008 substitute.
//!
//! Each [`Benchmark`] bundles a linked [`Program`] containing its hot
//! methods (re-implementations of the methods in the dissertation's
//! Tables 3–4) plus a *driver* method that allocates and initializes state
//! and exercises the hot methods, so the whole benchmark runs end-to-end on
//! the interpreter for the dynamic-mix analysis of Chapter 5.

use javaflow_bytecode::{MethodId, Program, Value};
use javaflow_interp::{Interp, JvmError, Profiler};

/// Which SPEC generation a benchmark models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteKind {
    /// SpecJVM2008 analog.
    Jvm2008,
    /// SpecJVM98 analog.
    Jvm98,
}

impl SuiteKind {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SuiteKind::Jvm2008 => "SpecJvm2008",
            SuiteKind::Jvm98 => "SpecJvm98",
        }
    }
}

/// One benchmark: a program, its driver, and its hot methods.
#[derive(Debug)]
pub struct Benchmark {
    /// Benchmark name (e.g. `scimark.fft`).
    pub name: &'static str,
    /// Suite generation.
    pub suite: SuiteKind,
    /// The linked program.
    pub program: Program,
    /// Entry point that runs a representative workload.
    pub driver: MethodId,
    /// Driver arguments (typically a problem size).
    pub driver_args: Vec<Value>,
    /// The hot methods (the "top 4" of Tables 3–4), hottest first.
    pub hot: Vec<MethodId>,
}

impl Benchmark {
    /// Runs the driver on a fresh interpreter with profiling, returning the
    /// profiler and the driver's result.
    ///
    /// # Errors
    ///
    /// Propagates interpreter failures.
    pub fn profile(&self) -> Result<(Profiler, Option<Value>), JvmError> {
        let mut jvm = Interp::new(&self.program).with_profiler();
        let result = jvm.run(self.driver, &self.driver_args)?;
        Ok((jvm.profiler.take().expect("profiler attached"), result))
    }

    /// Runs the driver without profiling and returns its result.
    ///
    /// # Errors
    ///
    /// Propagates interpreter failures.
    pub fn run(&self) -> Result<Option<Value>, JvmError> {
        let mut jvm = Interp::new(&self.program);
        jvm.run(self.driver, &self.driver_args)
    }

    /// Names of the hot methods.
    #[must_use]
    pub fn hot_names(&self) -> Vec<&str> {
        self.hot.iter().map(|id| self.program.method(*id).name.as_str()).collect()
    }
}

/// Builds the full 14-benchmark suite the evaluation runs over: the eight
/// SpecJVM2008 analogs and six SpecJVM98 analogs of Tables 3–4, each sized
/// so the whole suite profiles on the interpreter in seconds.
#[must_use]
pub fn full_suite() -> Vec<Benchmark> {
    vec![
        crate::compress::compress_benchmark(SuiteKind::Jvm2008, 2_048),
        crate::crypto::crypto_benchmark(24),
        crate::audio::mpegaudio_benchmark(SuiteKind::Jvm2008, 12),
        crate::scimark::fft_benchmark(64),
        crate::scimark::lu_benchmark(14),
        crate::scimark::monte_carlo_benchmark(3_000),
        crate::scimark::sor_benchmark(14, 12),
        crate::scimark::sparse_benchmark(48, 4, 6),
        crate::compress::compress_benchmark(SuiteKind::Jvm98, 1_024),
        crate::misc98::jess_benchmark(48, 5),
        crate::db::db_benchmark(96, 8),
        crate::audio::mpegaudio_benchmark(SuiteKind::Jvm98, 8),
        crate::misc98::mtrt_benchmark(160),
        crate::misc98::jack_benchmark(768),
    ]
}

//! Synthetic method population generator.
//!
//! Chapter 7 evaluates roughly 1600 methods. The real hot kernels live in
//! the benchmark modules; this generator produces the surrounding
//! *population* — javac-shaped methods with sizes and instruction mixes
//! matched to the Chapter 5 measurements (median ≈ 29 instructions, mean ≈
//! 56, a long tail toward 1000; static mix ≈ 60% arithmetic / 10% float /
//! 10% control / 20% storage). Every generated method passes the verifier,
//! so it loads and resolves on the fabric; execution uses the scripted
//! branch predictors exactly as the dissertation's population runs did
//! (no trace data), so loops terminate by predictor schedule, not by data.

use javaflow_bytecode::{ClassDef, Method, MethodBuilder, MethodId, Opcode, Program};

use crate::rng::StdRng;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
    /// Number of methods to generate.
    pub count: usize,
    /// Log-normal size parameter: median instruction count.
    pub median_size: f64,
    /// Log-normal size spread (σ of ln size).
    pub sigma: f64,
    /// Hard size cap.
    pub max_size: usize,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig { seed: 0x4a56_4d46, count: 200, median_size: 14.0, sigma: 1.3, max_size: 1_100 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ty {
    Int,
    Long,
    Float,
    Double,
}

struct Gen<'b, 'r> {
    rng: &'r mut StdRng,
    b: &'b mut MethodBuilder,
    ints: Vec<u16>,
    longs: Vec<u16>,
    floats: Vec<u16>,
    doubles: Vec<u16>,
    arr_int: u16,
    arr_double: u16,
    next_counter: u16,
    callee: MethodId,
    statics_class: u16,
    budget: usize,
}

impl Gen<'_, '_> {
    fn spent(&self) -> usize {
        self.b.here() as usize
    }

    fn over_budget(&self) -> bool {
        self.spent() >= self.budget
    }

    fn pick_reg(&mut self, pool: &[u16]) -> u16 {
        pool[self.rng.gen_range(0..pool.len())]
    }

    /// Emits one value of type `ty` (a leaf: register or constant).
    fn leaf(&mut self, ty: Ty) {
        let use_reg = self.rng.gen_bool(0.65);
        match ty {
            Ty::Int => {
                if use_reg {
                    let r = self.pick_reg(&self.ints.clone());
                    self.b.iload(r);
                } else {
                    let v = self.rng.gen_range(-100..100);
                    self.b.iconst(v);
                }
            }
            Ty::Long => {
                if use_reg {
                    let r = self.pick_reg(&self.longs.clone());
                    self.b.lload(r);
                } else {
                    let v: i64 = self.rng.gen_range(-100..100);
                    self.b.lconst(v);
                }
            }
            Ty::Float => {
                if use_reg {
                    let r = self.pick_reg(&self.floats.clone());
                    self.b.fload(r);
                } else {
                    let v = self.rng.gen_range(-8..8) as f32 * 0.5;
                    self.b.fconst(v);
                }
            }
            Ty::Double => {
                if use_reg {
                    let r = self.pick_reg(&self.doubles.clone());
                    self.b.dload(r);
                } else {
                    let v = self.rng.gen_range(-8..8) as f64 * 0.25;
                    self.b.dconst(v);
                }
            }
        }
    }

    /// Emits an expression of type `ty`, leaving one value on the stack.
    fn expr(&mut self, ty: Ty, depth: u32) {
        if depth == 0 || self.over_budget() || self.rng.gen_bool(0.3) {
            self.leaf(ty);
            return;
        }
        let roll: f64 = self.rng.gen();
        match ty {
            Ty::Int => {
                if roll < 0.05 {
                    // helper call (GPP-serviced on the fabric)
                    self.expr(Ty::Int, depth - 1);
                    self.b.invoke(Opcode::InvokeStatic, self.callee, 1, true);
                } else if roll < 0.15 {
                    // ordered array read
                    let arr = self.arr_int;
                    self.b.aload(arr);
                    self.leaf(Ty::Int);
                    self.b.iconst(0xFF).op(Opcode::IAnd);
                    self.b.op(Opcode::IALoad);
                } else if roll < 0.20 {
                    // static field read
                    let slot = self.rng.gen_range(0..4u16);
                    self.b.field(Opcode::GetStatic, self.statics_class, slot);
                } else if roll < 0.28 {
                    // narrowing conversion
                    let src = match self.rng.gen_range(0..3) {
                        0 => Ty::Long,
                        1 => Ty::Float,
                        _ => Ty::Double,
                    };
                    self.expr(src, depth - 1);
                    self.b.op(match src {
                        Ty::Long => Opcode::L2I,
                        Ty::Float => Opcode::F2I,
                        Ty::Double => Opcode::D2I,
                        Ty::Int => unreachable!(),
                    });
                } else if roll < 0.34 {
                    // floating comparison producing an int
                    self.expr(Ty::Double, depth - 1);
                    self.expr(Ty::Double, depth - 1);
                    self.b.op(Opcode::DCmpL);
                } else {
                    let op = match self.rng.gen_range(0..8) {
                        0 => Opcode::IAdd,
                        1 => Opcode::ISub,
                        2 => Opcode::IMul,
                        3 => Opcode::IAnd,
                        4 => Opcode::IOr,
                        5 => Opcode::IXor,
                        6 => Opcode::IShl,
                        _ => Opcode::IUShr,
                    };
                    self.expr(Ty::Int, depth - 1);
                    self.expr(Ty::Int, depth - 1);
                    self.b.op(op);
                }
            }
            Ty::Long => {
                if roll < 0.2 {
                    self.expr(Ty::Int, depth - 1);
                    self.b.op(Opcode::I2L);
                } else {
                    let op = match self.rng.gen_range(0..6) {
                        0 => Opcode::LAdd,
                        1 => Opcode::LSub,
                        2 => Opcode::LMul,
                        3 => Opcode::LAnd,
                        4 => Opcode::LOr,
                        _ => Opcode::LXor,
                    };
                    self.expr(Ty::Long, depth - 1);
                    self.expr(Ty::Long, depth - 1);
                    self.b.op(op);
                }
            }
            Ty::Float => {
                if roll < 0.2 {
                    self.expr(Ty::Int, depth - 1);
                    self.b.op(Opcode::I2F);
                } else {
                    let op = match self.rng.gen_range(0..4) {
                        0 => Opcode::FAdd,
                        1 => Opcode::FSub,
                        2 => Opcode::FMul,
                        _ => Opcode::FDiv,
                    };
                    self.expr(Ty::Float, depth - 1);
                    self.expr(Ty::Float, depth - 1);
                    self.b.op(op);
                }
            }
            Ty::Double => {
                if roll < 0.12 {
                    self.expr(Ty::Int, depth - 1);
                    self.b.op(Opcode::I2D);
                } else if roll < 0.24 {
                    let arr = self.arr_double;
                    self.b.aload(arr);
                    self.leaf(Ty::Int);
                    self.b.iconst(0xFF).op(Opcode::IAnd);
                    self.b.op(Opcode::DALoad);
                } else {
                    let op = match self.rng.gen_range(0..4) {
                        0 => Opcode::DAdd,
                        1 => Opcode::DSub,
                        2 => Opcode::DMul,
                        _ => Opcode::DDiv,
                    };
                    self.expr(Ty::Double, depth - 1);
                    self.expr(Ty::Double, depth - 1);
                    self.b.op(op);
                }
            }
        }
    }

    /// Emits one statement (stack-neutral).
    fn stmt(&mut self, nest: u32) {
        if self.over_budget() {
            return;
        }
        let roll: f64 = self.rng.gen();
        if roll < 0.32 {
            // int assignment
            self.expr(Ty::Int, 3);
            let r = self.pick_reg(&self.ints.clone());
            self.b.istore(r);
        } else if roll < 0.44 {
            // double assignment
            self.expr(Ty::Double, 2);
            let r = self.pick_reg(&self.doubles.clone());
            self.b.dstore(r);
        } else if roll < 0.50 {
            // long assignment
            self.expr(Ty::Long, 2);
            let r = self.pick_reg(&self.longs.clone());
            self.b.lstore(r);
        } else if roll < 0.55 {
            // float assignment
            self.expr(Ty::Float, 2);
            let r = self.pick_reg(&self.floats.clone());
            self.b.fstore(r);
        } else if roll < 0.63 {
            // array write
            if self.rng.gen_bool(0.5) {
                let arr = self.arr_int;
                self.b.aload(arr);
                self.leaf(Ty::Int);
                self.b.iconst(0xFF).op(Opcode::IAnd);
                self.expr(Ty::Int, 2);
                self.b.op(Opcode::IAStore);
            } else {
                let arr = self.arr_double;
                self.b.aload(arr);
                self.leaf(Ty::Int);
                self.b.iconst(0xFF).op(Opcode::IAnd);
                self.expr(Ty::Double, 2);
                self.b.op(Opcode::DAStore);
            }
        } else if roll < 0.68 {
            // static field write
            self.expr(Ty::Int, 2);
            let slot = self.rng.gen_range(0..4u16);
            self.b.field(Opcode::PutStatic, self.statics_class, slot);
        } else if roll < 0.71 {
            // register increment
            let r = self.pick_reg(&self.ints.clone());
            let delta = self.rng.gen_range(-3..=3);
            self.b.iinc(r, if delta == 0 { 1 } else { delta });
        } else if roll < 0.88 && nest > 0 {
            // if / if-else
            self.expr(Ty::Int, 2);
            let cond = match self.rng.gen_range(0..4) {
                0 => Opcode::IfEq,
                1 => Opcode::IfNe,
                2 => Opcode::IfLt,
                _ => Opcode::IfGe,
            };
            let with_else = self.rng.gen_bool(0.4);
            let else_l = self.b.new_label();
            let end_l = self.b.new_label();
            self.b.branch(cond, else_l);
            for _ in 0..self.rng.gen_range(1..3) {
                self.stmt(nest - 1);
            }
            if with_else {
                self.b.branch(Opcode::Goto, end_l);
                self.b.bind(else_l);
                for _ in 0..self.rng.gen_range(1..3) {
                    self.stmt(nest - 1);
                }
                self.b.bind(end_l);
            } else {
                self.b.bind(else_l);
                // end_l unbound is fine only if unused — bind it harmlessly.
                self.b.bind(end_l);
            }
        } else if nest > 0 {
            // countdown loop with a dedicated counter register
            let counter = self.next_counter;
            self.next_counter += 1;
            let n = self.rng.gen_range(2..9);
            self.b.iconst(n);
            self.b.istore(counter);
            let top = self.b.new_label();
            let exit = self.b.new_label();
            self.b.bind(top);
            for _ in 0..self.rng.gen_range(1..3) {
                self.stmt(nest - 1);
            }
            self.b.iinc(counter, -1);
            self.b.iload(counter);
            self.b.branch(Opcode::IfGt, top);
            self.b.bind(exit);
        } else {
            // fall back to a simple assignment at max nesting
            self.expr(Ty::Int, 2);
            let r = self.pick_reg(&self.ints.clone());
            self.b.istore(r);
        }
    }
}

/// Generates the synthetic population; returns the program and the ids of
/// the generated methods (excluding the shared helper).
#[must_use]
pub fn generate(config: &GenConfig) -> (Program, Vec<MethodId>) {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut program = Program::new();
    let statics_class =
        program.add_class(ClassDef { name: "G".into(), instance_fields: 0, static_fields: 4 });

    // Shared helper callee.
    let mut hb = MethodBuilder::new("synthetic.helper", 1, true);
    hb.iload(0).iconst(3).op(Opcode::IMul).iconst(1).op(Opcode::IAdd);
    hb.op(Opcode::IReturn);
    let callee = program.add_method(hb.finish().expect("helper"));

    let mut ids = Vec::with_capacity(config.count);
    for idx in 0..config.count {
        let method = generate_method(config, &mut rng, idx, callee, statics_class);
        ids.push(program.add_method(method));
    }
    program.validate().expect("synthetic population valid");
    (program, ids)
}

/// A deterministic hand-written hotspot kernel for trace captures: a
/// nested countdown loop mixing int and double arithmetic with ordered
/// array reads and writes — the shape `tables --trace-out` records and
/// the EXPERIMENTS.md Perfetto recipe opens. No RNG anywhere, so the
/// recorded trace is byte-identical across processes.
#[must_use]
pub fn hotspot() -> (Program, MethodId) {
    let mut program = Program::new();
    let mut b = MethodBuilder::new("synthetic.hotspot", 1, true);
    // Registers: 0 int accumulator (the argument), 1 outer counter,
    // 2 inner counter, 3 double accumulator, 4 int array.
    b.dconst(1.0).dstore(3);
    b.iconst(6).istore(1);
    let outer = b.new_label();
    b.bind(outer);
    {
        b.iconst(8).istore(2);
        let inner = b.new_label();
        b.bind(inner);
        // acc = acc * 3 + arr[acc & 0xFF]
        b.iload(0).iconst(3).op(Opcode::IMul);
        b.aload(4);
        b.iload(0).iconst(0xFF).op(Opcode::IAnd);
        b.op(Opcode::IALoad);
        b.op(Opcode::IAdd).istore(0);
        // d = d * 1.5 + (double) acc
        b.dload(3).dconst(1.5).op(Opcode::DMul);
        b.iload(0).op(Opcode::I2D);
        b.op(Opcode::DAdd).dstore(3);
        // arr[acc & 0xFF] = acc — ordered store traffic for the memory ring
        b.aload(4);
        b.iload(0).iconst(0xFF).op(Opcode::IAnd);
        b.iload(0);
        b.op(Opcode::IAStore);
        b.iinc(2, -1);
        b.iload(2);
        b.branch(Opcode::IfGt, inner);
    }
    b.iinc(1, -1);
    b.iload(1);
    b.branch(Opcode::IfGt, outer);
    // Fold both accumulators into the int return.
    b.dload(3).op(Opcode::D2I);
    b.iload(0).op(Opcode::IXor);
    b.op(Opcode::IReturn);
    let id = program.add_method(b.finish().expect("hotspot verifies"));
    program.validate().expect("hotspot program valid");
    (program, id)
}

fn generate_method(
    config: &GenConfig,
    rng: &mut StdRng,
    idx: usize,
    callee: MethodId,
    statics_class: u16,
) -> Method {
    // Log-normal size draw.
    let z: f64 = {
        // Box–Muller from two uniforms.
        let u1: f64 = rng.gen_range(1e-9..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    };
    let size =
        (config.median_size * (config.sigma * z).exp()).clamp(3.0, config.max_size as f64) as usize;

    let num_args = rng.gen_range(1..4u16);
    let returns = rng.gen_bool(0.8);
    let mut b = MethodBuilder::new(format!("synthetic.m{idx}"), num_args, returns);

    // Tiny methods (the accessor/getter shape that dominates real library
    // code — ~43% of the dissertation's population is under 10
    // instructions): a couple of int statements, no register pools.
    if size < 12 {
        for _ in 0..(size.saturating_sub(4) / 3).max(1) {
            b.iload(rng.gen_range(0..num_args));
            b.iconst(rng.gen_range(-30..30));
            b.op(match rng.gen_range(0..3) {
                0 => Opcode::IAdd,
                1 => Opcode::IMul,
                _ => Opcode::IXor,
            });
            b.istore(rng.gen_range(0..num_args));
        }
        if returns {
            b.iload(0);
            b.op(Opcode::IReturn);
        } else {
            b.op(Opcode::ReturnVoid);
        }
        return b.finish().expect("tiny method verifies");
    }

    // Register pools: args are ints; then extra ints, longs, floats,
    // doubles, two array refs, then loop counters.
    let mut next = num_args;
    let mut take = |n: u16| {
        let r: Vec<u16> = (next..next + n).collect();
        next += n;
        r
    };
    let mut ints: Vec<u16> = (0..num_args).collect();
    ints.extend(take(rng.gen_range(2..5)));
    let longs = take(rng.gen_range(1..3));
    let floats = take(rng.gen_range(1..3));
    let doubles = take(rng.gen_range(1..4));
    let arr_int = take(1)[0];
    let arr_double = take(1)[0];

    // Initialize non-argument registers so data-independent paths are
    // well-typed (javac's definite assignment).
    for &r in ints.iter().skip(usize::from(num_args)) {
        b.iconst(rng.gen_range(-50..50));
        b.istore(r);
    }
    for &r in &longs {
        b.lconst(rng.gen_range(-50i64..50));
        b.lstore(r);
    }
    for &r in &floats {
        b.fconst(rng.gen_range(-4..4) as f32);
        b.fstore(r);
    }
    for &r in &doubles {
        b.dconst(rng.gen_range(-4..4) as f64);
        b.dstore(r);
    }

    {
        let mut g = Gen {
            rng,
            b: &mut b,
            ints,
            longs,
            floats,
            doubles,
            arr_int,
            arr_double,
            next_counter: next,
            callee,
            statics_class,
            budget: size,
        };
        while !g.over_budget() {
            g.stmt(3);
        }
    }

    if returns {
        // Return an int expression summarizing some state.
        b.iload(0);
        b.op(Opcode::IReturn);
    } else {
        b.op(Opcode::ReturnVoid);
    }
    b.finish().expect("generated method verifies")
}

#[cfg(test)]
mod tests {
    use super::*;
    use javaflow_bytecode::verify;

    #[test]
    fn population_verifies_and_is_deterministic() {
        let cfg = GenConfig { count: 60, ..GenConfig::default() };
        let (p1, ids1) = generate(&cfg);
        let (p2, _ids2) = generate(&cfg);
        assert_eq!(ids1.len(), 60);
        for (id, m) in p1.methods() {
            let v = verify(m).expect("verifies");
            assert_eq!(v.back_merges, 0, "{} has back merges", m.name);
            assert_eq!(p2.method(id), m, "generation not deterministic");
        }
    }

    #[test]
    fn hotspot_verifies_and_is_deterministic() {
        let (p1, id1) = hotspot();
        let (p2, id2) = hotspot();
        assert_eq!(id1, id2);
        let m = p1.method(id1);
        verify(m).expect("hotspot verifies");
        assert_eq!(m, p2.method(id2), "hotspot generation not deterministic");
        assert!(m.len() > 20, "hotspot too small to be interesting: {}", m.len());
    }

    #[test]
    fn sizes_follow_target_distribution() {
        let cfg = GenConfig { count: 300, ..GenConfig::default() };
        let (p, ids) = generate(&cfg);
        let mut sizes: Vec<usize> = ids.iter().map(|id| p.method(*id).len()).collect();
        sizes.sort_unstable();
        let median = sizes[sizes.len() / 2];
        assert!(
            (15..=90).contains(&median),
            "median {median} far from the Chapter 5 target of ~29–56"
        );
        assert!(*sizes.last().unwrap() > 150, "population needs a large-method tail");
    }

    #[test]
    fn mix_is_in_the_static_mix_ballpark() {
        use javaflow_bytecode::NodeKind;
        let cfg = GenConfig { count: 150, ..GenConfig::default() };
        let (p, ids) = generate(&cfg);
        let mut counts = [0usize; 4];
        let mut total = 0usize;
        for id in &ids {
            for insn in &p.method(*id).code {
                let k = match insn.group().node_kind() {
                    NodeKind::Arith => 0,
                    NodeKind::Float => 1,
                    NodeKind::Storage => 2,
                    NodeKind::Control => 3,
                };
                counts[k] += 1;
                total += 1;
            }
        }
        let frac = |k: usize| counts[k] as f64 / total as f64;
        assert!((0.40..=0.80).contains(&frac(0)), "arith {:.2}", frac(0));
        assert!((0.03..=0.30).contains(&frac(1)), "float {:.2}", frac(1));
        assert!((0.05..=0.35).contains(&frac(2)), "storage {:.2}", frac(2));
        assert!((0.03..=0.25).contains(&frac(3)), "control {:.2}", frac(3));
    }
}

//! The SPEC-JVM-substitute workload suite for JavaFlow.
//!
//! SPEC JVM98/JVM2008 class files are proprietary, so every hot method the
//! dissertation's Tables 3–4 name is re-implemented from scratch against
//! the [`javaflow_bytecode::MethodBuilder`], preserving the algorithmic
//! structure (loop nests, arithmetic mix, array traffic, call shape) that
//! the Chapter 5/7 measurements depend on:
//!
//! * [`compress`] — LZW compress/decompress, bit packing, CRC32 (verified
//!   lossless round trip and against a reference CRC);
//! * [`crypto`] — multiword arithmetic and real SHA-1 / SHA-256 compression
//!   (verified against independent Rust implementations);
//! * [`audio`] — MP3-decoder-shaped kernels (dequantize, inverse MDCT,
//!   Huffman decode, hybrid filter bank, polyphase filter);
//! * [`scimark`] — FFT (exact round trip), LU (matches a Rust reference),
//!   SOR, sparse matmult, Monte Carlo, and `Random.nextDouble` — the
//!   dissertation's Appendix C case study;
//! * [`db`], [`misc98`] — string compare/sort, expert-system comparisons,
//!   ray/octree geometry, NFA tokenization;
//! * [`synthetic`] — a deterministic generator for the ~1600-method
//!   population of the Chapter 7 sweeps.
//!
//! [`full_suite`] assembles the complete 14-benchmark set with drivers that
//! allocate and initialize real heap state, so every benchmark runs
//! end-to-end on the interpreter and co-simulates on the fabric.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audio;
pub mod compress;
pub mod crypto;
pub mod db;
pub mod misc98;
pub mod rng;
pub mod scimark;
mod suite;
pub mod synthetic;
pub mod util;

pub use suite::{full_suite, Benchmark, SuiteKind};

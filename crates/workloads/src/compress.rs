//! The `compress` benchmark family (SpecJVM98 `_201_compress` and
//! SpecJVM2008 `compress`): LZW compression/decompression with hash-table
//! probing, 12-bit output packing, buffered input, and `CRC32.update`.
//!
//! The hot methods mirror Tables 3–4: `Compressor.compress`,
//! `Compressor.output`, `Decompressor.decompress`, `Input_Buffer.getbyte`,
//! and `CRC32.update`. The driver compresses a repetitive buffer,
//! decompresses it, and returns the number of round-trip mismatches (zero
//! for a correct implementation — asserted by the tests).

use javaflow_bytecode::{ArrayKind, ClassDef, MethodBuilder, MethodId, Opcode, Program, Value};

use crate::util::{for_up, Src};
use crate::{Benchmark, SuiteKind};

const HBITS: i32 = 13;
const HSIZE: i32 = 1 << HBITS;

/// Adds `CRC32.make_table` and `CRC32.update`; returns their ids.
pub fn build_crc32(p: &mut Program) -> (MethodId, MethodId) {
    // CRC32.make_table() -> int[]
    let mut b = MethodBuilder::new("CRC32.make_table", 0, true);
    // locals: 0 table, 1 n, 2 c, 3 k
    b.iconst(256);
    b.newarray(ArrayKind::Int);
    b.astore(0);
    for_up(&mut b, 1, Src::Const(0), Src::Const(256), 1, |b| {
        b.iload(1).istore(2);
        for_up(b, 3, Src::Const(0), Src::Const(8), 1, |b| {
            let even = b.new_label();
            let done = b.new_label();
            b.iload(2).iconst(1).op(Opcode::IAnd);
            b.branch(Opcode::IfEq, even);
            b.iconst(0xEDB8_8320_u32 as i32);
            b.iload(2).iconst(1).op(Opcode::IUShr);
            b.op(Opcode::IXor);
            b.istore(2);
            b.branch(Opcode::Goto, done);
            b.bind(even);
            b.iload(2).iconst(1).op(Opcode::IUShr).istore(2);
            b.bind(done);
        });
        b.aload(0).iload(1).iload(2).op(Opcode::IAStore);
    });
    b.aload(0);
    b.op(Opcode::AReturn);
    let make_table = p.add_method(b.finish().expect("make_table"));

    // CRC32.update(crc, buf, table) -> int
    let mut b = MethodBuilder::new("CRC32.update", 3, true);
    // locals: 0 crc, 1 buf, 2 table, 3 i, 4 n
    b.iload(0).iconst(-1).op(Opcode::IXor).istore(0);
    b.aload(1).op(Opcode::ArrayLength).istore(4);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(4), 1, |b| {
        b.aload(2);
        b.iload(0);
        b.aload(1).iload(3).op(Opcode::IALoad);
        b.op(Opcode::IXor);
        b.iconst(0xFF).op(Opcode::IAnd);
        b.op(Opcode::IALoad);
        b.iload(0).iconst(8).op(Opcode::IUShr);
        b.op(Opcode::IXor);
        b.istore(0);
    });
    b.iload(0).iconst(-1).op(Opcode::IXor);
    b.op(Opcode::IReturn);
    let update = p.add_method(b.finish().expect("update"));

    (make_table, update)
}

/// Adds `Compressor.compress`; returns its id.
///
/// LZW with linear-probe hashing: codes for the input are appended to
/// `out`; the return value is the number of codes emitted.
pub fn build_compress(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("Compressor.compress", 4, true);
    // args: 0 input, 1 out, 2 htab, 3 codetab
    // locals: 4 free_ent, 5 ent, 6 outpos, 7 i, 8 c, 9 fcode, 10 h,
    //         11 found, 12 n
    b.iconst(257).istore(4);
    b.aload(0).iconst(0).op(Opcode::IALoad).istore(5);
    b.iconst(0).istore(6);
    b.aload(0).op(Opcode::ArrayLength).istore(12);
    for_up(&mut b, 7, Src::Const(1), Src::Reg(12), 1, |b| {
        b.aload(0).iload(7).op(Opcode::IALoad).istore(8);
        // fcode = (c << 16) + ent
        b.iload(8).iconst(16).op(Opcode::IShl).iload(5).op(Opcode::IAdd).istore(9);
        // h = ((c << 8) ^ ent) & (HSIZE - 1)
        b.iload(8).iconst(8).op(Opcode::IShl).iload(5).op(Opcode::IXor);
        b.iconst(HSIZE - 1).op(Opcode::IAnd);
        b.istore(10);
        b.iconst(0).istore(11);
        // linear probe
        {
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.aload(2).iload(10).op(Opcode::IALoad).iconst(-1);
            b.branch(Opcode::IfICmpEq, end);
            let miss = b.new_label();
            b.aload(2).iload(10).op(Opcode::IALoad).iload(9);
            b.branch(Opcode::IfICmpNe, miss);
            b.iconst(1).istore(11);
            b.branch(Opcode::Goto, end);
            b.bind(miss);
            b.iload(10).iconst(1).op(Opcode::IAdd).iconst(HSIZE - 1).op(Opcode::IAnd).istore(10);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        }
        let add_entry = b.new_label();
        let next = b.new_label();
        b.iload(11);
        b.branch(Opcode::IfEq, add_entry);
        // hit: ent = codetab[h]
        b.aload(3).iload(10).op(Opcode::IALoad).istore(5);
        b.branch(Opcode::Goto, next);
        b.bind(add_entry);
        // miss: install entry, emit ent, restart from c
        b.aload(2).iload(10).iload(9).op(Opcode::IAStore);
        b.aload(3).iload(10).iload(4).op(Opcode::IAStore);
        b.iinc(4, 1);
        b.aload(1).iload(6).iload(5).op(Opcode::IAStore);
        b.iinc(6, 1);
        b.iload(8).istore(5);
        b.bind(next);
    });
    b.aload(1).iload(6).iload(5).op(Opcode::IAStore);
    b.iinc(6, 1);
    b.iload(6);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("compress"))
}

/// Adds `Compressor.output` (12-bit code packing); returns its id.
pub fn build_output(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("Compressor.output", 3, false);
    // args: 0 code, 1 buf, 2 state (state[0] = bit offset, state[1] = index)
    // locals: 3 r_off, 4 idx
    b.aload(2).iconst(0).op(Opcode::IALoad).istore(3);
    b.aload(2).iconst(1).op(Opcode::IALoad).istore(4);
    // buf[idx] |= (code << r_off) & 0xff
    b.aload(1).iload(4);
    b.aload(1).iload(4).op(Opcode::IALoad);
    b.iload(0).iload(3).op(Opcode::IShl).iconst(0xFF).op(Opcode::IAnd);
    b.op(Opcode::IOr);
    b.op(Opcode::IAStore);
    // buf[idx+1] = (code >>> (8 - r_off)) & 0xff
    b.aload(1).iload(4).iconst(1).op(Opcode::IAdd);
    b.iload(0).iconst(8).iload(3).op(Opcode::ISub).op(Opcode::IUShr);
    b.iconst(0xFF).op(Opcode::IAnd);
    b.op(Opcode::IAStore);
    // buf[idx+2] = (code >>> (16 - r_off)) & 0xff
    b.aload(1).iload(4).iconst(2).op(Opcode::IAdd);
    b.iload(0).iconst(16).iload(3).op(Opcode::ISub).op(Opcode::IUShr);
    b.iconst(0xFF).op(Opcode::IAnd);
    b.op(Opcode::IAStore);
    // advance: r_off += 12; idx += r_off >> 3; r_off &= 7
    b.iload(3).iconst(12).op(Opcode::IAdd).istore(3);
    b.iload(4).iload(3).iconst(3).op(Opcode::IShr).op(Opcode::IAdd).istore(4);
    b.iload(3).iconst(7).op(Opcode::IAnd).istore(3);
    b.aload(2).iconst(0).iload(3).op(Opcode::IAStore);
    b.aload(2).iconst(1).iload(4).op(Opcode::IAStore);
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("output"))
}

/// Adds `Decompressor.decompress`; returns its id.
pub fn build_decompress(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("Decompressor.decompress", 6, true);
    // args: 0 codes, 1 ncodes, 2 out, 3 prefix, 4 suffix, 5 destack
    // locals: 6 free_ent, 7 outpos, 8 oldcode, 9 finchar, 10 i, 11 code,
    //         12 incode, 13 sp
    b.iconst(257).istore(6);
    b.iconst(0).istore(7);
    b.aload(0).iconst(0).op(Opcode::IALoad).istore(8);
    b.iload(8).istore(9);
    b.aload(2).iload(7).iload(8).op(Opcode::IAStore);
    b.iinc(7, 1);
    for_up(&mut b, 10, Src::Const(1), Src::Reg(1), 1, |b| {
        b.aload(0).iload(10).op(Opcode::IALoad).istore(11);
        b.iload(11).istore(12);
        b.iconst(0).istore(13);
        // KwKwK: code not yet in the table
        let known = b.new_label();
        b.iload(11).iload(6);
        b.branch(Opcode::IfICmpLt, known);
        b.aload(5).iload(13).iload(9).op(Opcode::IAStore);
        b.iinc(13, 1);
        b.iload(8).istore(11);
        b.bind(known);
        // walk the prefix chain
        {
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(11).iconst(255);
            b.branch(Opcode::IfICmpLe, end);
            b.aload(5).iload(13);
            b.aload(4).iload(11).op(Opcode::IALoad);
            b.op(Opcode::IAStore);
            b.iinc(13, 1);
            b.aload(3).iload(11).op(Opcode::IALoad).istore(11);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        }
        b.iload(11).istore(9);
        b.aload(5).iload(13).iload(9).op(Opcode::IAStore);
        b.iinc(13, 1);
        // emit the reversed stack
        {
            let top = b.new_label();
            let end = b.new_label();
            b.bind(top);
            b.iload(13);
            b.branch(Opcode::IfLe, end);
            b.iinc(13, -1);
            b.aload(2).iload(7);
            b.aload(5).iload(13).op(Opcode::IALoad);
            b.op(Opcode::IAStore);
            b.iinc(7, 1);
            b.branch(Opcode::Goto, top);
            b.bind(end);
        }
        // grow the table
        b.aload(3).iload(6).iload(8).op(Opcode::IAStore);
        b.aload(4).iload(6).iload(9).op(Opcode::IAStore);
        b.iinc(6, 1);
        b.iload(12).istore(8);
    });
    b.iload(7);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("decompress"))
}

/// Adds the `Input_Buffer` class and `Input_Buffer.getbyte`; returns
/// `(class, getbyte)`.
pub fn build_input_buffer(p: &mut Program) -> (u16, MethodId) {
    // Fields: 0 buf, 1 pos, 2 count.
    let class =
        p.add_class(ClassDef { name: "Input_Buffer".into(), instance_fields: 3, static_fields: 0 });
    let mut b = MethodBuilder::new("Input_Buffer.getbyte", 1, true);
    let eof = b.new_label();
    b.aload(0);
    b.field(Opcode::GetField, class, 1);
    b.aload(0);
    b.field(Opcode::GetField, class, 2);
    b.branch(Opcode::IfICmpGe, eof);
    // return buf[pos++]
    b.aload(0);
    b.field(Opcode::GetField, class, 0);
    b.aload(0);
    b.field(Opcode::GetField, class, 1);
    b.op(Opcode::IALoad);
    b.aload(0);
    b.aload(0);
    b.field(Opcode::GetField, class, 1);
    b.iconst(1).op(Opcode::IAdd);
    b.field(Opcode::PutField, class, 1);
    b.op(Opcode::IReturn);
    b.bind(eof);
    b.iconst(-1);
    b.op(Opcode::IReturn);
    let getbyte = p.add_method(b.finish().expect("getbyte"));
    (class, getbyte)
}

/// Builds a `compress` benchmark for either suite generation.
#[must_use]
pub fn compress_benchmark(suite: SuiteKind, input_len: i32) -> Benchmark {
    let mut p = Program::new();
    let (ib_class, getbyte) = build_input_buffer(&mut p);
    let (make_table, crc_update) = build_crc32(&mut p);
    let compress = build_compress(&mut p);
    let output = build_output(&mut p);
    let decompress = build_decompress(&mut p);

    // driver(len): fill input via Input_Buffer reads of a generated buffer,
    // compress, pack, decompress, count mismatches (+ CRC to exercise it).
    let mut b = MethodBuilder::new("compress.driver", 1, true);
    // locals: 0 len, 1 raw, 2 input, 3 ib, 4 i, 5 htab, 6 codetab,
    //         7 codes, 8 ncodes, 9 packed, 10 state, 11 outbuf, 12 prefix,
    //         13 suffix, 14 destack, 15 nout, 16 mismatches, 17 table
    b.iload(0);
    b.newarray(ArrayKind::Int);
    b.astore(1);
    // repetitive-but-mixed content: raw[i] = (i*7 & 63) | ((i >> 4) & 3)
    for_up(&mut b, 4, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(1).iload(4);
        b.iload(4).iconst(7).op(Opcode::IMul).iconst(63).op(Opcode::IAnd);
        b.iload(4).iconst(4).op(Opcode::IShr).iconst(3).op(Opcode::IAnd);
        b.op(Opcode::IOr);
        b.op(Opcode::IAStore);
    });
    // Input_Buffer wrapping raw, drained through getbyte into input.
    b.emit(Opcode::New, javaflow_bytecode::Operand::ClassId(ib_class));
    b.astore(3);
    b.aload(3).aload(1);
    b.field(Opcode::PutField, ib_class, 0);
    b.aload(3).iconst(0);
    b.field(Opcode::PutField, ib_class, 1);
    b.aload(3).iload(0);
    b.field(Opcode::PutField, ib_class, 2);
    b.iload(0);
    b.newarray(ArrayKind::Int);
    b.astore(2);
    for_up(&mut b, 4, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(2).iload(4);
        b.aload(3);
        b.invoke(Opcode::InvokeVirtual, getbyte, 1, true);
        b.op(Opcode::IAStore);
    });
    // hash tables
    b.iconst(HSIZE);
    b.newarray(ArrayKind::Int);
    b.astore(5);
    for_up(&mut b, 4, Src::Const(0), Src::Const(HSIZE), 1, |b| {
        b.aload(5).iload(4).iconst(-1).op(Opcode::IAStore);
    });
    b.iconst(HSIZE);
    b.newarray(ArrayKind::Int);
    b.astore(6);
    b.iload(0).iconst(2).op(Opcode::IAdd);
    b.newarray(ArrayKind::Int);
    b.astore(7);
    // compress
    b.aload(2).aload(7).aload(5).aload(6);
    b.invoke(Opcode::InvokeStatic, compress, 4, true);
    b.istore(8);
    // pack every code through output()
    b.iload(0).iconst(2).op(Opcode::IMul).iconst(16).op(Opcode::IAdd);
    b.newarray(ArrayKind::Int);
    b.astore(9);
    b.iconst(2);
    b.newarray(ArrayKind::Int);
    b.astore(10);
    for_up(&mut b, 4, Src::Const(0), Src::Reg(8), 1, |b| {
        b.aload(7).iload(4).op(Opcode::IALoad);
        b.aload(9).aload(10);
        b.invoke(Opcode::InvokeStatic, output, 3, false);
    });
    // decompress
    b.iload(0).iconst(16).op(Opcode::IAdd);
    b.newarray(ArrayKind::Int);
    b.astore(11);
    b.iconst(HSIZE);
    b.newarray(ArrayKind::Int);
    b.astore(12);
    b.iconst(HSIZE);
    b.newarray(ArrayKind::Int);
    b.astore(13);
    b.iconst(HSIZE);
    b.newarray(ArrayKind::Int);
    b.astore(14);
    b.aload(7).iload(8).aload(11).aload(12).aload(13).aload(14);
    b.invoke(Opcode::InvokeStatic, decompress, 6, true);
    b.istore(15);
    // verify round trip
    b.iconst(0).istore(16);
    let lengths_ok = b.new_label();
    b.iload(15).iload(0);
    b.branch(Opcode::IfICmpEq, lengths_ok);
    b.iinc(16, 1);
    b.bind(lengths_ok);
    for_up(&mut b, 4, Src::Const(0), Src::Reg(0), 1, |b| {
        let same = b.new_label();
        b.aload(2).iload(4).op(Opcode::IALoad);
        b.aload(11).iload(4).op(Opcode::IALoad);
        b.branch(Opcode::IfICmpEq, same);
        b.iinc(16, 1);
        b.bind(same);
    });
    // exercise CRC32 (result folded in so it cannot be optimized away)
    b.invoke(Opcode::InvokeStatic, make_table, 0, true);
    b.astore(17);
    b.iconst(0).aload(2).aload(17);
    b.invoke(Opcode::InvokeStatic, crc_update, 3, true);
    let crc_nonzero = b.new_label();
    b.branch(Opcode::IfNe, crc_nonzero);
    b.iinc(16, 1_000_000); // a zero CRC over this input means a broken CRC
    b.bind(crc_nonzero);
    b.iload(16);
    b.op(Opcode::IReturn);
    let driver = p.add_method(b.finish().expect("compress.driver"));

    p.validate().expect("compress benchmark valid");
    let name = match suite {
        SuiteKind::Jvm2008 => "compress",
        SuiteKind::Jvm98 => "_201_compress",
    };
    Benchmark {
        name,
        suite,
        program: p,
        driver,
        driver_args: vec![Value::Int(input_len)],
        hot: vec![compress, decompress, output, getbyte],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lzw_round_trip_is_lossless() {
        let bench = compress_benchmark(SuiteKind::Jvm2008, 512);
        let mismatches = bench.run().unwrap().unwrap().as_int().unwrap();
        assert_eq!(mismatches, 0);
    }

    #[test]
    fn crc32_matches_reference() {
        let mut p = Program::new();
        let (make_table, update) = build_crc32(&mut p);
        p.validate().unwrap();
        let mut jvm = javaflow_interp::Interp::new(&p);
        let table = jvm.run(make_table, &[]).unwrap().unwrap();
        // buf = [1, 2, 3, 4]
        let buf = jvm.state.heap.alloc_array(ArrayKind::Int, 4).unwrap();
        for (i, v) in [1, 2, 3, 4].into_iter().enumerate() {
            jvm.state.heap.array_set(Some(buf), i as i32, Value::Int(v)).unwrap();
        }
        let got = jvm
            .run(update, &[Value::Int(0), Value::Ref(Some(buf)), table])
            .unwrap()
            .unwrap()
            .as_int()
            .unwrap() as u32;
        // Rust reference CRC32 over the same bytes.
        let mut crc: u32 = !0;
        for byte in [1u8, 2, 3, 4] {
            crc ^= u32::from(byte);
            for _ in 0..8 {
                crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            }
        }
        assert_eq!(got, !crc);
    }

    #[test]
    fn both_suite_variants_build() {
        for suite in [SuiteKind::Jvm2008, SuiteKind::Jvm98] {
            let bench = compress_benchmark(suite, 128);
            assert_eq!(bench.run().unwrap().unwrap().as_int(), Some(0));
        }
    }
}

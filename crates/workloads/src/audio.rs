//! The `mpegaudio` benchmark family (SpecJVM2008 `mpegaudio` and SpecJVM98
//! `_222_mpegaudio`): MP3-decoder-shaped kernels — sample dequantization,
//! inverse MDCT, Huffman decoding from a bit reservoir, the hybrid filter
//! bank, and the `q.l`/`lb.read` polyphase filter and buffered read of the
//! JVM98 variant.

use javaflow_bytecode::{ArrayKind, MethodBuilder, MethodId, Opcode, Program, Value};

use crate::util::{for_up, Src};
use crate::{Benchmark, SuiteKind};

/// Adds `LayerIIIDecoder.dequantize_sample(xr, sign, gain)`:
/// `xr[i] = ±|s|·2^(gain/4)`-shaped power scaling over a sample block.
pub fn build_dequantize(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("LayerIIIDecoder.dequantize_sample", 3, false);
    // args: 0 xr (double[]), 1 samples (int[]), 2 gain
    // locals: 3 i, 4 n, 5 s, 6 v(d), 7 scale(d), 8 g
    b.aload(0).op(Opcode::ArrayLength).istore(4);
    // scale = 2^(gain/4) by repeated multiplication (gain small)
    b.dconst(1.0).dstore(7);
    b.iload(2).iconst(4).op(Opcode::IDiv).istore(8);
    {
        let top = b.new_label();
        let end = b.new_label();
        b.bind(top);
        b.iload(8);
        b.branch(Opcode::IfLe, end);
        b.dload(7).dconst(2.0).op(Opcode::DMul).dstore(7);
        b.iinc(8, -1);
        b.branch(Opcode::Goto, top);
        b.bind(end);
    }
    for_up(&mut b, 3, Src::Const(0), Src::Reg(4), 1, |b| {
        b.aload(1).iload(3).op(Opcode::IALoad).istore(5);
        // v = s * |s|^(1/3)-ish: v = s * sqrt-free cube via s*s*s / (1+|s|)
        b.iload(5).op(Opcode::I2D);
        b.iload(5).op(Opcode::I2D).op(Opcode::DMul);
        b.iload(5).op(Opcode::I2D).op(Opcode::DMul);
        b.dconst(1.0);
        b.iload(5).op(Opcode::I2D);
        crate::util::dabs(b);
        b.op(Opcode::DAdd);
        b.op(Opcode::DDiv);
        b.dstore(6);
        // sign restore and scale
        let pos = b.new_label();
        b.iload(5);
        b.branch(Opcode::IfGe, pos);
        b.dload(6).op(Opcode::DNeg).dstore(6);
        b.bind(pos);
        b.aload(0).iload(3);
        b.dload(6).dload(7).op(Opcode::DMul);
        b.op(Opcode::DAStore);
    });
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("dequantize"))
}

/// Adds `LayerIIIDecoder.inv_mdct(input, output, win)` — the windowed
/// inverse MDCT inner product loops.
pub fn build_inv_mdct(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("LayerIIIDecoder.inv_mdct", 3, false);
    // args: 0 in (double[]), 1 out (double[]), 2 win (double[])
    // locals: 3 i, 4 k, 5 sum(d), 6 n, 7 m
    b.aload(1).op(Opcode::ArrayLength).istore(6);
    b.aload(0).op(Opcode::ArrayLength).istore(7);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(6), 1, |b| {
        b.dconst(0.0).dstore(5);
        for_up(b, 4, Src::Const(0), Src::Reg(7), 1, |b| {
            b.dload(5);
            b.aload(0).iload(4).op(Opcode::DALoad);
            // win[(i + k) % win.length]
            b.aload(2);
            b.iload(3).iload(4).op(Opcode::IAdd);
            b.aload(2).op(Opcode::ArrayLength);
            b.op(Opcode::IRem);
            b.op(Opcode::DALoad);
            b.op(Opcode::DMul);
            b.op(Opcode::DAdd);
            b.dstore(5);
        });
        b.aload(1).iload(3).dload(5).op(Opcode::DAStore);
    });
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("inv_mdct"))
}

/// Adds `huffcodetab.huffman_decoder(bits, tree, state)` — walks a binary
/// code tree stored as `tree[2*node + bit]`, consuming bits from a packed
/// reservoir; returns the decoded symbol.
pub fn build_huffman(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("huffcodetab.huffman_decoder", 3, true);
    // args: 0 bits (int[]), 1 tree (int[]), 2 state (int[]; [0] = bitpos)
    // locals: 3 node, 4 bitpos, 5 word, 6 bit, 7 child
    b.iconst(0).istore(3);
    b.aload(2).iconst(0).op(Opcode::IALoad).istore(4);
    {
        let top = b.new_label();
        let end = b.new_label();
        b.bind(top);
        // bit = (bits[bitpos >> 5] >>> (bitpos & 31)) & 1
        b.aload(0).iload(4).iconst(5).op(Opcode::IShr).op(Opcode::IALoad).istore(5);
        b.iload(5).iload(4).iconst(31).op(Opcode::IAnd).op(Opcode::IUShr);
        b.iconst(1).op(Opcode::IAnd);
        b.istore(6);
        b.iinc(4, 1);
        // child = tree[2*node + bit]; negative = leaf symbol
        b.aload(1);
        b.iload(3).iconst(2).op(Opcode::IMul).iload(6).op(Opcode::IAdd);
        b.op(Opcode::IALoad);
        b.istore(7);
        b.iload(7);
        b.branch(Opcode::IfLt, end);
        b.iload(7).istore(3);
        b.branch(Opcode::Goto, top);
        b.bind(end);
    }
    b.aload(2).iconst(0).iload(4).op(Opcode::IAStore);
    // symbol = -child - 1
    b.iload(7).op(Opcode::INeg).iconst(1).op(Opcode::ISub);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("huffman"))
}

/// Adds `LayerIIIDecoder.hybrid(prev, cur, win)` — overlap-add filter bank.
pub fn build_hybrid(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("LayerIIIDecoder.hybrid", 3, false);
    // args: 0 prev (double[]), 1 cur (double[]), 2 win (double[])
    // locals: 3 i, 4 n, 5 t(d)
    b.aload(1).op(Opcode::ArrayLength).istore(4);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(4), 1, |b| {
        b.aload(1).iload(3).op(Opcode::DALoad).dstore(5);
        // cur[i] = cur[i]*win[i] + prev[i]
        b.aload(1).iload(3);
        b.dload(5);
        b.aload(2).iload(3).op(Opcode::DALoad);
        b.op(Opcode::DMul);
        b.aload(0).iload(3).op(Opcode::DALoad);
        b.op(Opcode::DAdd);
        b.op(Opcode::DAStore);
        // prev[i] = t
        b.aload(0).iload(3).dload(5).op(Opcode::DAStore);
    });
    b.op(Opcode::ReturnVoid);
    p.add_method(b.finish().expect("hybrid"))
}

/// Adds `q.l(s, u)` — the JVM98 polyphase filter inner product on 16-bit
/// samples with saturation, returning the accumulated output.
pub fn build_ql(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("q.l", 2, true);
    // args: 0 s (int[] samples), 1 u (int[] coefficients)
    // locals: 2 i, 3 acc, 4 n, 5 t
    b.iconst(0).istore(3);
    b.aload(0).op(Opcode::ArrayLength).istore(4);
    for_up(&mut b, 2, Src::Const(0), Src::Reg(4), 1, |b| {
        // t = (s[i] * u[i % u.length]) >> 15
        b.aload(0).iload(2).op(Opcode::IALoad);
        b.aload(1);
        b.iload(2);
        b.aload(1).op(Opcode::ArrayLength);
        b.op(Opcode::IRem);
        b.op(Opcode::IALoad);
        b.op(Opcode::IMul);
        b.iconst(15).op(Opcode::IShr);
        b.istore(5);
        // saturate to 16 bits
        let no_hi = b.new_label();
        b.iload(5).iconst(32_767);
        b.branch(Opcode::IfICmpLe, no_hi);
        b.iconst(32_767).istore(5);
        b.bind(no_hi);
        let no_lo = b.new_label();
        b.iload(5).iconst(-32_768);
        b.branch(Opcode::IfICmpGe, no_lo);
        b.iconst(-32_768).istore(5);
        b.bind(no_lo);
        b.iload(3).iload(5).op(Opcode::IAdd).istore(3);
    });
    b.iload(3);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("q.l"))
}

/// Adds `lb.read(dst, src, state)` — buffered block copy with wraparound,
/// returning the number of values copied.
pub fn build_lb_read(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("lb.read", 3, true);
    // args: 0 dst, 1 src, 2 state ([0] = read position)
    // locals: 3 i, 4 n, 5 pos, 6 m
    b.aload(0).op(Opcode::ArrayLength).istore(4);
    b.aload(1).op(Opcode::ArrayLength).istore(6);
    b.aload(2).iconst(0).op(Opcode::IALoad).istore(5);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(4), 1, |b| {
        let no_wrap = b.new_label();
        b.iload(5).iload(6);
        b.branch(Opcode::IfICmpLt, no_wrap);
        b.iconst(0).istore(5);
        b.bind(no_wrap);
        b.aload(0).iload(3);
        b.aload(1).iload(5).op(Opcode::IALoad);
        b.op(Opcode::IAStore);
        b.iinc(5, 1);
    });
    b.aload(2).iconst(0).iload(5).op(Opcode::IAStore);
    b.iload(4);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("lb.read"))
}

/// Builds an `mpegaudio` benchmark for either suite generation.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn mpegaudio_benchmark(suite: SuiteKind, frames: i32) -> Benchmark {
    let mut p = Program::new();
    let dequantize = build_dequantize(&mut p);
    let inv_mdct = build_inv_mdct(&mut p);
    let huffman = build_huffman(&mut p);
    let hybrid = build_hybrid(&mut p);
    let ql = build_ql(&mut p);
    let lb_read = build_lb_read(&mut p);

    let mut b = MethodBuilder::new("mpegaudio.driver", 1, true);
    // locals: 0 frames, 1 samples, 2 xr, 3 out, 4 win, 5 prev, 6 bits,
    //         7 tree, 8 state, 9 i, 10 acc, 11 coeffs, 12 pcm, 13 rdstate
    let nsamp = 32;
    b.iconst(nsamp);
    b.newarray(ArrayKind::Int);
    b.astore(1);
    b.iconst(nsamp);
    b.newarray(ArrayKind::Double);
    b.astore(2);
    b.iconst(16);
    b.newarray(ArrayKind::Double);
    b.astore(3);
    b.iconst(8);
    b.newarray(ArrayKind::Double);
    b.astore(4);
    b.iconst(16);
    b.newarray(ArrayKind::Double);
    b.astore(5);
    b.iconst(4);
    b.newarray(ArrayKind::Int);
    b.astore(6);
    // window coefficients
    for_up(&mut b, 9, Src::Const(0), Src::Const(8), 1, |b| {
        b.aload(4).iload(9);
        b.iload(9).op(Opcode::I2D).dconst(0.125).op(Opcode::DMul).dconst(0.5).op(Opcode::DAdd);
        b.op(Opcode::DAStore);
    });
    // a small complete code tree: internal nodes 0..3, leaves negative.
    // tree[2i], tree[2i+1] = children; negative entry = -(symbol+1)
    b.iconst(8);
    b.newarray(ArrayKind::Int);
    b.astore(7);
    let tree = [1i32, 2, -1, 3, -2, -3, -4, -5];
    for (i, v) in tree.iter().enumerate() {
        b.aload(7).iconst(i as i32).iconst(*v).op(Opcode::IAStore);
    }
    b.iconst(1);
    b.newarray(ArrayKind::Int);
    b.astore(8);
    b.iconst(0).istore(10);
    b.iconst(16);
    b.newarray(ArrayKind::Int);
    b.astore(11);
    for_up(&mut b, 9, Src::Const(0), Src::Const(16), 1, |b| {
        b.aload(11).iload(9);
        b.iload(9).iconst(3).op(Opcode::IMul).iconst(8_192).op(Opcode::IAdd);
        b.op(Opcode::IAStore);
    });
    b.iconst(64);
    b.newarray(ArrayKind::Int);
    b.astore(12);
    b.iconst(1);
    b.newarray(ArrayKind::Int);
    b.astore(13);
    // frame loop
    for_up(&mut b, 9, Src::Const(0), Src::Reg(0), 1, |b| {
        // bit reservoir content varies per frame
        for_up(b, 10, Src::Const(0), Src::Const(4), 1, |b| {
            b.aload(6).iload(10);
            b.iload(10).iload(9).op(Opcode::IAdd).iconst(0x5DEE_CE66).op(Opcode::IMul);
            b.op(Opcode::IAStore);
        });
        b.aload(8).iconst(0).iconst(0).op(Opcode::IAStore);
        // decode a run of symbols into samples
        for_up(b, 10, Src::Const(0), Src::Const(nsamp), 1, |b| {
            b.aload(1).iload(10);
            b.aload(6).aload(7).aload(8);
            b.invoke(Opcode::InvokeStatic, huffman, 3, true);
            b.iload(9).op(Opcode::IAdd).iconst(7).op(Opcode::ISub);
            b.op(Opcode::IAStore);
        });
        b.aload(2).aload(1).iconst(8);
        b.invoke(Opcode::InvokeStatic, dequantize, 3, false);
        b.aload(2).aload(3).aload(4);
        b.invoke(Opcode::InvokeStatic, inv_mdct, 3, false);
        b.aload(5).aload(3).aload(4);
        // hybrid(prev=5, cur=3, win=4): win must cover cur length — reuse
        // the 16-long prev as window by passing prev twice? Keep shapes:
        // win is 8 long; hybrid indexes win by i < cur.len (16) — use cur
        // as its own window to stay in bounds.
        b.op(Opcode::Pop);
        b.op(Opcode::Pop);
        b.op(Opcode::Pop);
        b.aload(5).aload(3).aload(3);
        b.invoke(Opcode::InvokeStatic, hybrid, 3, false);
        // polyphase + buffered read
        b.aload(12).aload(1).aload(13);
        b.invoke(Opcode::InvokeStatic, lb_read, 3, true);
        b.op(Opcode::Pop);
        b.aload(12).aload(11);
        b.invoke(Opcode::InvokeStatic, ql, 2, true);
        b.istore(10);
    });
    b.iload(10);
    b.op(Opcode::IReturn);
    let driver = p.add_method(b.finish().expect("mpegaudio.driver"));

    p.validate().expect("mpegaudio benchmark valid");
    let (name, hot) = match suite {
        SuiteKind::Jvm2008 => ("mpegaudio", vec![dequantize, inv_mdct, huffman, hybrid]),
        SuiteKind::Jvm98 => ("_222_mpegaudio", vec![ql, lb_read, dequantize, inv_mdct]),
    };
    Benchmark { name, suite, program: p, driver, driver_args: vec![Value::Int(frames)], hot }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huffman_decodes_tree_symbols() {
        let mut p = Program::new();
        let huff = build_huffman(&mut p);
        p.validate().unwrap();
        let mut jvm = javaflow_interp::Interp::new(&p);
        // bits = 0b...0110 → first bit 0 → node1; tree[2*1+?]. Walk by hand:
        // tree: n0=[1,2], n1=[-1,3], n2=[-2,-3], n3=[-4,-5]
        let tree_vals = [1i32, 2, -1, 3, -2, -3, -4, -5];
        let tree = jvm.state.heap.alloc_array(ArrayKind::Int, 8).unwrap();
        for (i, v) in tree_vals.iter().enumerate() {
            jvm.state.heap.array_set(Some(tree), i as i32, Value::Int(*v)).unwrap();
        }
        let bits = jvm.state.heap.alloc_array(ArrayKind::Int, 1).unwrap();
        jvm.state.heap.array_set(Some(bits), 0, Value::Int(0b10)).unwrap();
        let state = jvm.state.heap.alloc_array(ArrayKind::Int, 1).unwrap();
        // bit sequence: 0 then 1 → n0 --0--> n1 --1--> n3? n1's children are
        // tree[2]= -1 (bit 0, leaf sym 0) and tree[3] = 3 (bit 1 → n3).
        // n3 children tree[6] = -4 (bit 0 → leaf sym 3).
        let sym = jvm
            .run(huff, &[Value::Ref(Some(bits)), Value::Ref(Some(tree)), Value::Ref(Some(state))])
            .unwrap()
            .unwrap();
        assert_eq!(sym, Value::Int(3));
        // three bits consumed
        assert_eq!(jvm.state.heap.array_get(Some(state), 0).unwrap(), Value::Int(3));
    }

    #[test]
    fn driver_runs_both_suites() {
        for suite in [SuiteKind::Jvm2008, SuiteKind::Jvm98] {
            let bench = mpegaudio_benchmark(suite, 3);
            let v = bench.run().unwrap().unwrap();
            assert!(v.as_int().is_some());
        }
    }

    #[test]
    fn ql_saturates() {
        let mut p = Program::new();
        let ql = build_ql(&mut p);
        p.validate().unwrap();
        let mut jvm = javaflow_interp::Interp::new(&p);
        let s = jvm.state.heap.alloc_array(ArrayKind::Int, 2).unwrap();
        jvm.state.heap.array_set(Some(s), 0, Value::Int(1 << 18)).unwrap();
        jvm.state.heap.array_set(Some(s), 1, Value::Int(-(1 << 18))).unwrap();
        let u = jvm.state.heap.alloc_array(ArrayKind::Int, 1).unwrap();
        jvm.state.heap.array_set(Some(u), 0, Value::Int(1 << 12)).unwrap();
        let r = jvm.run(ql, &[Value::Ref(Some(s)), Value::Ref(Some(u))]).unwrap().unwrap();
        // (2^30 >> 15) = 32768 saturates to 32767; the negative side floors
        // at -32768: 32767 - 32768 = -1.
        assert_eq!(r, Value::Int(-1));
    }
}

//! Self-contained deterministic PRNG (xoshiro256++ seeded via SplitMix64).
//!
//! The synthetic-population generator needs reproducible pseudo-random
//! draws, but this workspace builds fully offline, so it cannot pull the
//! `rand` crate. This module provides the small slice of `rand`'s API the
//! generator (and the property tests) actually use, with identical calling
//! conventions: `StdRng::seed_from_u64`, `gen`, `gen_bool`, `gen_range`
//! over integer/float ranges. Streams are stable across platforms — the
//! population is part of the evaluation's reproducibility contract.

use std::ops::{Range, RangeInclusive};

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Deterministic generator with a `rand::rngs::StdRng`-shaped API subset.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Seeds the generator (SplitMix64 state expansion, the xoshiro
    /// authors' recommended seeding).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }

    /// Next raw 64-bit draw (xoshiro256++).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw of a sampleable type (only `f64` in `[0, 1)` is
    /// needed here).
    #[inline]
    pub fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Uniform draw from a range (half-open or inclusive integer ranges,
    /// half-open float ranges).
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    #[inline]
    pub fn gen_range<T, R: UniformRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Types [`StdRng::gen`] can draw directly.
pub trait Sample {
    /// Draws one value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`StdRng::gen_range`] can sample uniformly; the type parameter
/// carries the element type outward so unsuffixed range literals infer
/// from the call site, as with `rand`.
pub trait UniformRange<T> {
    /// Draws one value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl UniformRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = u128::from(rng.next_u64()) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl UniformRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-100..100);
            assert!((-100..100).contains(&v));
            let u = r.gen_range(0..4u16);
            assert!(u < 4);
            let f = r.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
            let i = r.gen_range(-3..=3);
            assert!((-3..=3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_600..3_400).contains(&hits), "{hits}");
    }

    #[test]
    fn f64_draws_are_uniform_unit() {
        let mut r = StdRng::seed_from_u64(2);
        let mean: f64 = (0..10_000).map(|_| r.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.46..0.54).contains(&mean), "{mean}");
    }
}

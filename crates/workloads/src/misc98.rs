//! The remaining SpecJVM98 families: `_202_jess` (expert-system value
//! comparisons), `_227_mtrt` (ray-tracer geometry), and `_228_jack`
//! (parser-generator NFA simulation and tokenization).

use javaflow_bytecode::{ArrayKind, ClassDef, MethodBuilder, MethodId, Opcode, Program, Value};

use crate::util::{for_up, Src};
use crate::{Benchmark, SuiteKind};

// ---------------------------------------------------------------- jess --

/// Adds `Value.equals(a, b)` — tagged-value comparison (`[tag, payload]`
/// int pairs, branching on the tag like jess's `Value.equals`).
pub fn build_value_equals(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("Value.equals", 2, true);
    // args: 0 a (int[2]), 1 b (int[2])
    let tags_match = b.new_label();
    b.aload(0).iconst(0).op(Opcode::IALoad);
    b.aload(1).iconst(0).op(Opcode::IALoad);
    b.branch(Opcode::IfICmpEq, tags_match);
    b.iconst(0);
    b.op(Opcode::IReturn);
    b.bind(tags_match);
    let payload_match = b.new_label();
    b.aload(0).iconst(1).op(Opcode::IALoad);
    b.aload(1).iconst(1).op(Opcode::IALoad);
    b.branch(Opcode::IfICmpEq, payload_match);
    b.iconst(0);
    b.op(Opcode::IReturn);
    b.bind(payload_match);
    b.iconst(1);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("Value.equals"))
}

/// Adds `ValueVector.equals(a, b)` — element-wise vector comparison via
/// `Value.equals` calls.
pub fn build_vector_equals(p: &mut Program, value_equals: MethodId) -> MethodId {
    let mut b = MethodBuilder::new("ValueVector.equals", 2, true);
    // args: 0 a (ref[] of int[2]), 1 b
    // locals: 2 n, 3 i
    let len_match = b.new_label();
    b.aload(0).op(Opcode::ArrayLength);
    b.aload(1).op(Opcode::ArrayLength);
    b.branch(Opcode::IfICmpEq, len_match);
    b.iconst(0);
    b.op(Opcode::IReturn);
    b.bind(len_match);
    b.aload(0).op(Opcode::ArrayLength).istore(2);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(2), 1, |b| {
        let elem_ok = b.new_label();
        b.aload(0).iload(3).op(Opcode::AALoad);
        b.aload(1).iload(3).op(Opcode::AALoad);
        b.invoke(Opcode::InvokeStatic, value_equals, 2, true);
        b.branch(Opcode::IfNe, elem_ok);
        b.iconst(0);
        b.op(Opcode::IReturn);
        b.bind(elem_ok);
    });
    b.iconst(1);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("ValueVector.equals"))
}

/// Adds `Token.data_equals(a, b)` — token payload comparison: sort code
/// then fact vectors (jess's `Token.data_equals`).
pub fn build_data_equals(p: &mut Program, vector_equals: MethodId) -> MethodId {
    let mut b = MethodBuilder::new("Token.data_equals", 3, true);
    // args: 0 sortcode_a, 1 a (ref[] vectors), 2 b
    // locals: 3 i, 4 n
    b.aload(1).op(Opcode::ArrayLength).istore(4);
    let len_ok = b.new_label();
    b.aload(2).op(Opcode::ArrayLength).iload(4);
    b.branch(Opcode::IfICmpEq, len_ok);
    b.iconst(0);
    b.op(Opcode::IReturn);
    b.bind(len_ok);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(4), 1, |b| {
        let ok = b.new_label();
        b.aload(1).iload(3).op(Opcode::AALoad);
        b.aload(2).iload(3).op(Opcode::AALoad);
        b.invoke(Opcode::InvokeStatic, vector_equals, 2, true);
        b.branch(Opcode::IfNe, ok);
        b.iconst(0);
        b.op(Opcode::IReturn);
        b.bind(ok);
    });
    // sort codes must also agree; a negative sort code never matches
    let code_ok = b.new_label();
    b.iload(0);
    b.branch(Opcode::IfGe, code_ok);
    b.iconst(0);
    b.op(Opcode::IReturn);
    b.bind(code_ok);
    b.iconst(1);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("data_equals"))
}

/// Adds `Node2.runTests(tokens_a, tokens_b)` — pairwise token comparisons,
/// counting matches (the join-node test loop of jess).
pub fn build_run_tests(p: &mut Program, data_equals: MethodId) -> MethodId {
    let mut b = MethodBuilder::new("Node2.runTests", 2, true);
    // args: 0 a (ref[] of ref[] of int[2]), 1 b
    // locals: 2 i, 3 n, 4 hits
    b.aload(0).op(Opcode::ArrayLength).istore(3);
    b.iconst(0).istore(4);
    for_up(&mut b, 2, Src::Const(0), Src::Reg(3), 1, |b| {
        let miss = b.new_label();
        b.iload(2);
        b.aload(0).iload(2).op(Opcode::AALoad);
        b.aload(1).iload(2).op(Opcode::AALoad);
        b.invoke(Opcode::InvokeStatic, data_equals, 3, true);
        b.branch(Opcode::IfEq, miss);
        b.iinc(4, 1);
        b.bind(miss);
    });
    b.iload(4);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("runTests"))
}

/// Builds the `_202_jess` benchmark.
#[must_use]
pub fn jess_benchmark(tokens: i32, vec_len: i32) -> Benchmark {
    let mut p = Program::new();
    let arr = p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
    let value_equals = build_value_equals(&mut p);
    let vector_equals = build_vector_equals(&mut p, value_equals);
    let data_equals = build_data_equals(&mut p, vector_equals);
    let run_tests = build_run_tests(&mut p, data_equals);

    let mut b = MethodBuilder::new("jess.driver", 2, true);
    // args: 0 tokens, 1 vec_len
    // locals: 2 a, 3 b, 4 i, 5 j, 6 vecs, 7 vec, 8 val, 9 seed
    b.iconst(99).istore(9);
    // build two mostly-equal token lists
    for slot in [2u16, 3] {
        b.iload(0);
        b.emit(Opcode::ANewArray, javaflow_bytecode::Operand::ClassId(arr));
        b.astore(slot);
        for_up(&mut b, 4, Src::Const(0), Src::Reg(0), 1, |b| {
            b.iconst(2);
            b.emit(Opcode::ANewArray, javaflow_bytecode::Operand::ClassId(arr));
            b.astore(6);
            for_up(b, 5, Src::Const(0), Src::Const(2), 1, |b| {
                b.iload(1);
                b.emit(Opcode::ANewArray, javaflow_bytecode::Operand::ClassId(arr));
                b.astore(7);
                // fill the vector with values
                let k = 10u16;
                for_up(b, k, Src::Const(0), Src::Reg(1), 1, |b| {
                    b.iconst(2);
                    b.newarray(ArrayKind::Int);
                    b.astore(8);
                    b.aload(8).iconst(0);
                    b.iload(k).iconst(3).op(Opcode::IRem);
                    b.op(Opcode::IAStore);
                    b.aload(8).iconst(1);
                    // every 7th token of list b differs
                    b.iload(4).iload(k).op(Opcode::IAdd);
                    if slot == 3 {
                        b.iload(4).iconst(7).op(Opcode::IRem);
                        let same = b.new_label();
                        b.branch(Opcode::IfNe, same);
                        b.iconst(1).op(Opcode::IAdd);
                        b.bind(same);
                    }
                    b.op(Opcode::IAStore);
                    b.aload(7).iload(k).aload(8).op(Opcode::AAStore);
                });
                b.aload(6).iload(5).aload(7).op(Opcode::AAStore);
            });
            b.aload(slot).iload(4).aload(6).op(Opcode::AAStore);
        });
    }
    b.aload(2).aload(3);
    b.invoke(Opcode::InvokeStatic, run_tests, 2, true);
    b.op(Opcode::IReturn);
    let driver = p.add_method(b.finish().expect("jess.driver"));

    p.validate().expect("jess benchmark valid");
    Benchmark {
        name: "_202_jess",
        suite: SuiteKind::Jvm98,
        program: p,
        driver,
        driver_args: vec![Value::Int(tokens), Value::Int(vec_len)],
        hot: vec![run_tests, vector_equals, value_equals, data_equals],
    }
}

// ---------------------------------------------------------------- mtrt --

/// Adds the `Point` class and `Point.Combine(point, vector, f1, f2)` —
/// allocates the combined point like the SPEC ray tracer.
pub fn build_point_combine(p: &mut Program) -> (u16, MethodId) {
    // Fields: 0 x, 1 y, 2 z.
    let class =
        p.add_class(ClassDef { name: "Point".into(), instance_fields: 3, static_fields: 0 });
    let mut b = MethodBuilder::new("Point.Combine", 4, true);
    // args: 0 pt (Point), 1 vec (Point), 2 f1(d), 3 f2(d)
    // locals: 4 out
    b.emit(Opcode::New, javaflow_bytecode::Operand::ClassId(class));
    b.astore(4);
    for slot in 0..3i32 {
        let slot = slot as u16;
        b.aload(4);
        b.aload(0);
        b.field(Opcode::GetField, class, slot);
        b.dload(2).op(Opcode::DMul);
        b.aload(1);
        b.field(Opcode::GetField, class, slot);
        b.dload(3).op(Opcode::DMul);
        b.op(Opcode::DAdd);
        b.field(Opcode::PutField, class, slot);
    }
    b.aload(4);
    b.op(Opcode::AReturn);
    let combine = p.add_method(b.finish().expect("Combine"));
    (class, combine)
}

/// Adds the `OctNode` class and `OctNode.FindTreeNode(node, x, y, z)` —
/// descends the octree to the leaf containing a point.
pub fn build_find_tree_node(p: &mut Program) -> (u16, MethodId) {
    // Fields: 0..5 bounds (minx maxx miny maxy minz maxz), 6 children
    // (ref[] of OctNode or null), 7 depth.
    let class =
        p.add_class(ClassDef { name: "OctNode".into(), instance_fields: 8, static_fields: 0 });
    let mut b = MethodBuilder::new("OctNode.FindTreeNode", 4, true);
    // args: 0 node, 1 x(d), 2 y(d), 3 z(d)
    // locals: 4 children, 5 i, 6 child, 7 n
    let top = b.new_label();
    b.bind(top);
    b.aload(0);
    b.field(Opcode::GetField, class, 6);
    b.astore(4);
    let leaf = b.new_label();
    b.aload(4);
    b.branch(Opcode::IfNull, leaf);
    b.aload(4).op(Opcode::ArrayLength).istore(7);
    // find the child whose bounds contain (x, y, z)
    let descend = b.new_label();
    for_up(&mut b, 5, Src::Const(0), Src::Reg(7), 1, |b| {
        b.aload(4).iload(5).op(Opcode::AALoad).astore(6);
        let next = b.new_label();
        b.aload(6);
        b.branch(Opcode::IfNull, next);
        // containment test on all three axes
        for (axis, lo, hi) in [(1u16, 0u16, 1u16), (2, 2, 3), (3, 4, 5)] {
            b.dload(axis);
            b.aload(6);
            b.field(Opcode::GetField, class, lo);
            b.op(Opcode::DCmpL);
            b.branch(Opcode::IfLt, next);
            b.dload(axis);
            b.aload(6);
            b.field(Opcode::GetField, class, hi);
            b.op(Opcode::DCmpG);
            b.branch(Opcode::IfGt, next);
        }
        b.aload(6).astore(0);
        b.branch(Opcode::Goto, descend);
        b.bind(next);
    });
    // no child contains the point: this is the node
    b.aload(0);
    b.op(Opcode::AReturn);
    b.bind(descend);
    b.branch(Opcode::Goto, top);
    b.bind(leaf);
    b.aload(0);
    b.op(Opcode::AReturn);
    let find = p.add_method(b.finish().expect("FindTreeNode"));
    (class, find)
}

/// Adds `OctNode.Intersect(node, ox, oy, oz, dx, dy, dz)` — slab-test ray /
/// box intersection returning the entry parameter `t` (or −1).
pub fn build_intersect(p: &mut Program, class: u16) -> MethodId {
    let mut b = MethodBuilder::new("OctNode.Intersect", 7, true);
    // args: 0 node, 1 ox, 2 oy, 3 oz, 4 dx, 5 dy, 6 dz
    // locals: 7 tmin, 8 tmax, 9 t1, 10 t2, 11 tswap
    b.dconst(-1e30).dstore(7);
    b.dconst(1e30).dstore(8);
    for (axis, (o, d, lo, hi)) in
        [(1u16, 4u16, 0u16, 1u16), (2, 5, 2, 3), (3, 6, 4, 5)].into_iter().enumerate()
    {
        let _ = axis;
        let parallel = b.new_label();
        let axis_done = b.new_label();
        // if |d| very small, skip the axis (ray parallel to slab)
        b.dload(d);
        crate::util::dabs(&mut b);
        b.dconst(1e-12);
        b.op(Opcode::DCmpG);
        b.branch(Opcode::IfLt, parallel);
        // t1 = (lo - o)/d ; t2 = (hi - o)/d
        b.aload(0);
        b.field(Opcode::GetField, class, lo);
        b.dload(o).op(Opcode::DSub);
        b.dload(d).op(Opcode::DDiv);
        b.dstore(9);
        b.aload(0);
        b.field(Opcode::GetField, class, hi);
        b.dload(o).op(Opcode::DSub);
        b.dload(d).op(Opcode::DDiv);
        b.dstore(10);
        // order t1 <= t2
        let ordered = b.new_label();
        b.dload(9).dload(10).op(Opcode::DCmpL);
        b.branch(Opcode::IfLe, ordered);
        b.dload(9).dstore(11);
        b.dload(10).dstore(9);
        b.dload(11).dstore(10);
        b.bind(ordered);
        // tmin = max(tmin, t1); tmax = min(tmax, t2)
        let no_min = b.new_label();
        b.dload(9).dload(7).op(Opcode::DCmpL);
        b.branch(Opcode::IfLe, no_min);
        b.dload(9).dstore(7);
        b.bind(no_min);
        let no_max = b.new_label();
        b.dload(10).dload(8).op(Opcode::DCmpG);
        b.branch(Opcode::IfGe, no_max);
        b.dload(10).dstore(8);
        b.bind(no_max);
        b.branch(Opcode::Goto, axis_done);
        b.bind(parallel);
        // Ray parallel to this slab: miss unless the origin lies inside.
        let inside = b.new_label();
        b.dload(o);
        b.aload(0);
        b.field(Opcode::GetField, class, lo);
        b.op(Opcode::DCmpL);
        b.branch(Opcode::IfLt, inside);
        b.dload(o);
        b.aload(0);
        b.field(Opcode::GetField, class, hi);
        b.op(Opcode::DCmpG);
        b.branch(Opcode::IfLe, axis_done);
        b.bind(inside);
        b.dconst(-1.0);
        b.op(Opcode::DReturn);
        b.bind(axis_done);
    }
    // hit iff tmin <= tmax and tmax >= 0
    let miss = b.new_label();
    b.dload(7).dload(8).op(Opcode::DCmpG);
    b.branch(Opcode::IfGt, miss);
    b.dload(8).dconst(0.0).op(Opcode::DCmpL);
    b.branch(Opcode::IfLt, miss);
    b.dload(7);
    b.op(Opcode::DReturn);
    b.bind(miss);
    b.dconst(-1.0);
    b.op(Opcode::DReturn);
    p.add_method(b.finish().expect("Intersect"))
}

/// Builds the `_227_mtrt` benchmark.
#[must_use]
pub fn mtrt_benchmark(rays: i32) -> Benchmark {
    let mut p = Program::new();
    let arr = p.add_class(ClassDef { name: "Arr".into(), instance_fields: 0, static_fields: 0 });
    let (point_class, combine) = build_point_combine(&mut p);
    let (oct_class, find) = build_find_tree_node(&mut p);
    let intersect = build_intersect(&mut p, oct_class);

    // helper: make_node(minx, maxx, miny, maxy, minz, maxz) -> OctNode
    let mut b = MethodBuilder::new("OctNode.make", 6, true);
    b.emit(Opcode::New, javaflow_bytecode::Operand::ClassId(oct_class));
    b.astore(6);
    for slot in 0..6u16 {
        b.aload(6);
        b.dload(slot);
        b.field(Opcode::PutField, oct_class, slot);
    }
    // reference fields must be initialized explicitly (fields are untyped
    // in this IR, so the zero default is not a null reference)
    b.aload(6);
    b.op(Opcode::AConstNull);
    b.field(Opcode::PutField, oct_class, 6);
    b.aload(6);
    b.op(Opcode::AReturn);
    let make_node = p.add_method(b.finish().expect("make_node"));

    let mut b = MethodBuilder::new("mtrt.driver", 1, true);
    // locals: 0 rays, 1 root, 2 kids, 3 i, 4 hits, 5 t(d), 6 child,
    //         7 ox(d), 8 p1, 9 p2, 10 leaf
    // root box [0,8]^3 with two children
    b.dconst(0.0).dconst(8.0).dconst(0.0).dconst(8.0).dconst(0.0).dconst(8.0);
    b.invoke(Opcode::InvokeStatic, make_node, 6, true);
    b.astore(1);
    b.iconst(2);
    b.emit(Opcode::ANewArray, javaflow_bytecode::Operand::ClassId(arr));
    b.astore(2);
    b.dconst(0.0).dconst(4.0).dconst(0.0).dconst(8.0).dconst(0.0).dconst(8.0);
    b.invoke(Opcode::InvokeStatic, make_node, 6, true);
    b.astore(6);
    b.aload(2).iconst(0).aload(6).op(Opcode::AAStore);
    b.dconst(4.0).dconst(8.0).dconst(0.0).dconst(8.0).dconst(0.0).dconst(8.0);
    b.invoke(Opcode::InvokeStatic, make_node, 6, true);
    b.astore(6);
    b.aload(2).iconst(1).aload(6).op(Opcode::AAStore);
    b.aload(1).aload(2);
    b.field(Opcode::PutField, oct_class, 6);
    // two points for Combine
    b.emit(Opcode::New, javaflow_bytecode::Operand::ClassId(point_class));
    b.astore(8);
    b.aload(8).dconst(1.0);
    b.field(Opcode::PutField, point_class, 0);
    b.aload(8).dconst(2.0);
    b.field(Opcode::PutField, point_class, 1);
    b.aload(8).dconst(3.0);
    b.field(Opcode::PutField, point_class, 2);
    b.emit(Opcode::New, javaflow_bytecode::Operand::ClassId(point_class));
    b.astore(9);
    b.aload(9).dconst(0.5);
    b.field(Opcode::PutField, point_class, 0);
    b.aload(9).dconst(-0.25);
    b.field(Opcode::PutField, point_class, 1);
    b.aload(9).dconst(0.125);
    b.field(Opcode::PutField, point_class, 2);
    b.iconst(0).istore(4);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(0), 1, |b| {
        // ox sweeps across the box; rays point +x
        b.iload(3).op(Opcode::I2D).dconst(0.37).op(Opcode::DMul).dconst(-2.0).op(Opcode::DAdd);
        b.dstore(7);
        b.aload(1);
        b.dload(7).dconst(1.0).dconst(1.0);
        b.dconst(1.0).dconst(0.1).dconst(0.05);
        b.invoke(Opcode::InvokeStatic, intersect, 7, true);
        b.dstore(5);
        let miss = b.new_label();
        b.dload(5).dconst(0.0).op(Opcode::DCmpL);
        b.branch(Opcode::IfLt, miss);
        b.iinc(4, 1);
        b.bind(miss);
        // octree descent for a point derived from the ray
        b.aload(1);
        b.dload(7).dconst(2.0).op(Opcode::DAdd);
        b.dconst(1.5).dconst(2.5);
        b.invoke(Opcode::InvokeStatic, find, 4, true);
        b.astore(10);
        // Combine exercises allocation + float math
        b.aload(8).aload(9).dconst(0.9).dload(5);
        b.invoke(Opcode::InvokeStatic, combine, 4, true);
        b.op(Opcode::Pop);
    });
    b.iload(4);
    b.op(Opcode::IReturn);
    let driver = p.add_method(b.finish().expect("mtrt.driver"));

    p.validate().expect("mtrt benchmark valid");
    Benchmark {
        name: "_227_mtrt",
        suite: SuiteKind::Jvm98,
        program: p,
        driver,
        driver_args: vec![Value::Int(rays)],
        hot: vec![intersect, combine, find],
    }
}

// ---------------------------------------------------------------- jack --

/// Adds `RunTimeNfaState.Move(states, c)` — advances an NFA state set on an
/// input character using range tests, returning the live-state count.
pub fn build_nfa_move(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("RunTimeNfaState.Move", 3, true);
    // args: 0 states (int[]), 1 trans (int[] of lo,hi,target triples), 2 c
    // locals: 3 i, 4 n, 5 live, 6 s, 7 t, 8 m
    b.aload(0).op(Opcode::ArrayLength).istore(4);
    b.aload(1).op(Opcode::ArrayLength).iconst(3).op(Opcode::IDiv).istore(8);
    b.iconst(0).istore(5);
    for_up(&mut b, 3, Src::Const(0), Src::Reg(4), 1, |b| {
        b.aload(0).iload(3).op(Opcode::IALoad).istore(6);
        let dead = b.new_label();
        b.iload(6);
        b.branch(Opcode::IfLt, dead);
        // t = s % m transition triple
        b.iload(6).iload(8).op(Opcode::IRem).iconst(3).op(Opcode::IMul).istore(7);
        // in range?
        let no = b.new_label();
        b.iload(2);
        b.aload(1).iload(7).op(Opcode::IALoad);
        b.branch(Opcode::IfICmpLt, no);
        b.iload(2);
        b.aload(1).iload(7).iconst(1).op(Opcode::IAdd).op(Opcode::IALoad);
        b.branch(Opcode::IfICmpGt, no);
        b.aload(0).iload(3);
        b.aload(1).iload(7).iconst(2).op(Opcode::IAdd).op(Opcode::IALoad);
        b.op(Opcode::IAStore);
        b.iinc(5, 1);
        b.branch(Opcode::Goto, dead);
        b.bind(no);
        b.aload(0).iload(3).iconst(-1).op(Opcode::IAStore);
        b.bind(dead);
    });
    b.iload(5);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("Move"))
}

/// Adds `TokenEngine.getNextTokenFromStream(buf, pos, out)` — classifies a
/// run of characters (identifier / number / space / punctuation) returning
/// the token kind, with `pos[0]` advanced.
pub fn build_next_token(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("TokenEngine.getNextTokenFromStream", 3, true);
    // args: 0 buf (int[]), 1 pos (int[1]), 2 out (int[])
    // locals: 3 i, 4 n, 5 c, 6 kind, 7 outpos
    b.aload(1).iconst(0).op(Opcode::IALoad).istore(3);
    b.aload(0).op(Opcode::ArrayLength).istore(4);
    b.iconst(0).istore(7);
    // EOF?
    let not_eof = b.new_label();
    b.iload(3).iload(4);
    b.branch(Opcode::IfICmpLt, not_eof);
    b.iconst(-1);
    b.op(Opcode::IReturn);
    b.bind(not_eof);
    // skip spaces
    {
        let top = b.new_label();
        let end = b.new_label();
        b.bind(top);
        b.iload(3).iload(4);
        b.branch(Opcode::IfICmpGe, end);
        b.aload(0).iload(3).op(Opcode::IALoad).iconst(32);
        b.branch(Opcode::IfICmpNe, end);
        b.iinc(3, 1);
        b.branch(Opcode::Goto, top);
        b.bind(end);
    }
    let at_eof = b.new_label();
    b.iload(3).iload(4);
    b.branch(Opcode::IfICmpGe, at_eof);
    b.aload(0).iload(3).op(Opcode::IALoad).istore(5);
    // classify: letter → 1, digit → 2, other → 3
    let letter = b.new_label();
    let digit = b.new_label();
    let other = b.new_label();
    let scan = b.new_label();
    b.iload(5).iconst(97);
    b.branch(Opcode::IfICmpLt, digit);
    b.iload(5).iconst(122);
    b.branch(Opcode::IfICmpGt, digit);
    b.branch(Opcode::Goto, letter);
    b.bind(letter);
    b.iconst(1).istore(6);
    b.branch(Opcode::Goto, scan);
    b.bind(digit);
    let not_digit = b.new_label();
    b.iload(5).iconst(48);
    b.branch(Opcode::IfICmpLt, not_digit);
    b.iload(5).iconst(57);
    b.branch(Opcode::IfICmpGt, not_digit);
    b.iconst(2).istore(6);
    b.branch(Opcode::Goto, scan);
    b.bind(not_digit);
    b.branch(Opcode::Goto, other);
    b.bind(other);
    b.iconst(3).istore(6);
    b.iinc(3, 1);
    b.aload(2).iconst(0).iload(5).op(Opcode::IAStore);
    b.aload(1).iconst(0).iload(3).op(Opcode::IAStore);
    b.iconst(3);
    b.op(Opcode::IReturn);
    // scan a run of the same class into out
    b.bind(scan);
    {
        let top = b.new_label();
        let end = b.new_label();
        b.bind(top);
        b.iload(3).iload(4);
        b.branch(Opcode::IfICmpGe, end);
        b.aload(0).iload(3).op(Opcode::IALoad).istore(5);
        // same class?
        let cont = b.new_label();
        if true {
            // letters when kind == 1, digits when kind == 2
            let is_letter = b.new_label();
            let is_digit = b.new_label();
            b.iload(6).iconst(1);
            b.branch(Opcode::IfICmpEq, is_letter);
            b.branch(Opcode::Goto, is_digit);
            b.bind(is_letter);
            b.iload(5).iconst(97);
            b.branch(Opcode::IfICmpLt, end);
            b.iload(5).iconst(122);
            b.branch(Opcode::IfICmpGt, end);
            b.branch(Opcode::Goto, cont);
            b.bind(is_digit);
            b.iload(5).iconst(48);
            b.branch(Opcode::IfICmpLt, end);
            b.iload(5).iconst(57);
            b.branch(Opcode::IfICmpGt, end);
            b.branch(Opcode::Goto, cont);
        }
        b.bind(cont);
        b.aload(2).iload(7).iload(5).op(Opcode::IAStore);
        b.iinc(7, 1);
        b.iinc(3, 1);
        b.branch(Opcode::Goto, top);
        b.bind(end);
    }
    b.aload(1).iconst(0).iload(3).op(Opcode::IAStore);
    b.iload(6);
    b.op(Opcode::IReturn);
    b.bind(at_eof);
    b.aload(1).iconst(0).iload(3).op(Opcode::IAStore);
    b.iconst(-1);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("getNextTokenFromStream"))
}

/// Adds `String.init(dst, src)` — the `String.<init>([C)V` copy loop.
pub fn build_string_init(p: &mut Program) -> MethodId {
    let mut b = MethodBuilder::new("String.init", 2, true);
    // locals: 2 i, 3 n
    b.aload(1).op(Opcode::ArrayLength).istore(3);
    for_up(&mut b, 2, Src::Const(0), Src::Reg(3), 1, |b| {
        b.aload(0).iload(2);
        b.aload(1).iload(2).op(Opcode::IALoad);
        b.op(Opcode::IAStore);
    });
    b.iload(3);
    b.op(Opcode::IReturn);
    p.add_method(b.finish().expect("String.init"))
}

/// Builds the `_228_jack` benchmark.
#[must_use]
pub fn jack_benchmark(input_len: i32) -> Benchmark {
    let mut p = Program::new();
    let nfa_move = build_nfa_move(&mut p);
    let next_token = build_next_token(&mut p);
    let string_init = build_string_init(&mut p);

    let mut b = MethodBuilder::new("jack.driver", 1, true);
    // locals: 0 len, 1 buf, 2 pos, 3 out, 4 i, 5 kindsum, 6 states,
    //         7 trans, 8 copy, 9 k
    b.iload(0);
    b.newarray(ArrayKind::Int);
    b.astore(1);
    // synthetic source text: words, numbers, spaces, punctuation
    for_up(&mut b, 4, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(1).iload(4);
        // pattern of period 11 mixing classes
        b.iload(4).iconst(11).op(Opcode::IRem).istore(9);
        let digit = b.new_label();
        let space = b.new_label();
        let store = b.new_label();
        b.iload(9).iconst(5);
        b.branch(Opcode::IfICmpGe, digit);
        b.iload(9).iconst(97).op(Opcode::IAdd);
        b.branch(Opcode::Goto, store);
        b.bind(digit);
        b.iload(9).iconst(9);
        b.branch(Opcode::IfICmpGe, space);
        b.iload(9).iconst(43).op(Opcode::IAdd); // '0'-ish digits 48..51
        b.branch(Opcode::Goto, store);
        b.bind(space);
        b.iconst(32);
        b.bind(store);
        b.op(Opcode::IAStore);
    });
    b.iconst(1);
    b.newarray(ArrayKind::Int);
    b.astore(2);
    b.iload(0);
    b.newarray(ArrayKind::Int);
    b.astore(3);
    b.iconst(0).istore(5);
    // tokenize everything
    {
        let top = b.new_label();
        let end = b.new_label();
        b.bind(top);
        b.aload(1).aload(2).aload(3);
        b.invoke(Opcode::InvokeStatic, next_token, 3, true);
        b.istore(9);
        b.iload(9);
        b.branch(Opcode::IfLt, end);
        b.iload(5).iload(9).op(Opcode::IAdd).istore(5);
        b.branch(Opcode::Goto, top);
        b.bind(end);
    }
    // NFA simulation over the same text
    b.iconst(16);
    b.newarray(ArrayKind::Int);
    b.astore(6);
    for_up(&mut b, 4, Src::Const(0), Src::Const(16), 1, |b| {
        b.aload(6).iload(4).iload(4).op(Opcode::IAStore);
    });
    b.iconst(12);
    b.newarray(ArrayKind::Int);
    b.astore(7);
    for (i, v) in [97, 122, 1, 48, 57, 2, 32, 32, 3, 0, 127, 4].iter().enumerate() {
        b.aload(7).iconst(i as i32).iconst(*v).op(Opcode::IAStore);
    }
    for_up(&mut b, 4, Src::Const(0), Src::Reg(0), 1, |b| {
        b.aload(6).aload(7);
        b.aload(1).iload(4).op(Opcode::IALoad);
        b.invoke(Opcode::InvokeStatic, nfa_move, 3, true);
        b.iload(5).op(Opcode::IAdd).istore(5);
        // revive the state set every 16 characters
        let skip = b.new_label();
        b.iload(4).iconst(15).op(Opcode::IAnd);
        b.branch(Opcode::IfNe, skip);
        for_up(b, 9, Src::Const(0), Src::Const(16), 1, |b| {
            b.aload(6).iload(9).iload(9).op(Opcode::IAStore);
        });
        b.bind(skip);
    });
    // String.init copy
    b.iload(0);
    b.newarray(ArrayKind::Int);
    b.astore(8);
    b.aload(8).aload(1);
    b.invoke(Opcode::InvokeStatic, string_init, 2, true);
    b.iload(5).op(Opcode::IAdd);
    b.op(Opcode::IReturn);
    let driver = p.add_method(b.finish().expect("jack.driver"));

    p.validate().expect("jack benchmark valid");
    Benchmark {
        name: "_228_jack",
        suite: SuiteKind::Jvm98,
        program: p,
        driver,
        driver_args: vec![Value::Int(input_len)],
        hot: vec![nfa_move, next_token, string_init],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jess_counts_differing_tokens() {
        let bench = jess_benchmark(21, 4);
        let hits = bench.run().unwrap().unwrap().as_int().unwrap();
        // every 7th token differs → 21 - 3 = 18 matches
        assert_eq!(hits, 18);
    }

    #[test]
    fn mtrt_hits_are_plausible() {
        let bench = mtrt_benchmark(40);
        let hits = bench.run().unwrap().unwrap().as_int().unwrap();
        assert!(hits > 0 && hits <= 40, "hits = {hits}");
    }

    #[test]
    fn jack_tokenizes() {
        let bench = jack_benchmark(256);
        let v = bench.run().unwrap().unwrap().as_int().unwrap();
        assert!(v > 0);
    }

    #[test]
    fn intersect_agrees_with_rust_slab_test() {
        let mut p = Program::new();
        let (class, _combine) = build_point_combine(&mut p);
        let _ = class;
        let (oct_class, _find) = build_find_tree_node(&mut p);
        let intersect = build_intersect(&mut p, oct_class);
        p.validate().unwrap();
        let mut jvm = javaflow_interp::Interp::new(&p);
        let node = jvm.state.heap.alloc_object(oct_class, 8);
        for (slot, v) in [(0, 0.0), (1, 4.0), (2, 0.0), (3, 4.0), (4, 0.0), (5, 4.0)] {
            jvm.state.heap.put_field(Some(node), slot, Value::Double(v)).unwrap();
        }
        let run = |jvm: &mut javaflow_interp::Interp<'_>, o: [f64; 3], d: [f64; 3]| {
            jvm.run(
                intersect,
                &[
                    Value::Ref(Some(node)),
                    Value::Double(o[0]),
                    Value::Double(o[1]),
                    Value::Double(o[2]),
                    Value::Double(d[0]),
                    Value::Double(d[1]),
                    Value::Double(d[2]),
                ],
            )
            .unwrap()
            .unwrap()
            .as_double()
            .unwrap()
        };
        // straight-through hit from outside
        let t = run(&mut jvm, [-1.0, 2.0, 2.0], [1.0, 0.0, 0.0]);
        assert!((t - 1.0).abs() < 1e-9, "entry at t=1, got {t}");
        // miss
        let t = run(&mut jvm, [-1.0, 9.0, 2.0], [1.0, 0.0, 0.0]);
        assert!(t < 0.0);
        // origin inside the box → entry t ≤ 0 but hit
        let t = run(&mut jvm, [2.0, 2.0, 2.0], [0.0, 1.0, 0.0]);
        assert!(t <= 0.0);
    }
}
